// Package directory implements mintor's relay directory: descriptors, a
// consensus document with a text encoding, bandwidth-weighted relay
// selection, and a minimal fetch protocol.
//
// The paper's client learns relays from the Tor directory authorities and
// can optionally keep its two local relays unpublished by hard-coding their
// descriptors (§4.1, "PublishDescriptors 0"); Registry supports both
// published and unpublished descriptors for the same reason.
package directory

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode"

	"ting/internal/onion"
)

// Descriptor describes one relay: everything a client needs to extend a
// circuit through it.
type Descriptor struct {
	// Nickname is the relay's unique name.
	Nickname string
	// Addr is the relay's link address (a PipeNet name or host:port).
	Addr string
	// OnionKey is the relay's public handshake key.
	OnionKey onion.PublicKey
	// BandwidthKBps is the advertised bandwidth used for weighted
	// selection.
	BandwidthKBps float64
	// Exit reports whether the relay permits exit streams.
	Exit bool
	// Generation counts onion-key rotations for this nickname within one
	// registry. It is a runtime annotation, not part of the wire encoding:
	// a freshly parsed descriptor always has generation 0.
	Generation uint64
}

// Fingerprint returns a short stable identifier for the descriptor's onion
// key. Same-nickname descriptors with different keys (a rotation, or an
// impostor re-join) have different fingerprints.
func (d *Descriptor) Fingerprint() string {
	return hex.EncodeToString(d.OnionKey[:8])
}

// Validate checks the descriptor for completeness.
func (d *Descriptor) Validate() error {
	switch {
	case d.Nickname == "":
		return errors.New("directory: descriptor missing nickname")
	case strings.IndexFunc(d.Nickname, unicode.IsSpace) >= 0:
		return fmt.Errorf("directory: nickname %q contains whitespace", d.Nickname)
	case d.Addr == "":
		return fmt.Errorf("directory: descriptor %s missing address", d.Nickname)
	case strings.IndexFunc(d.Addr, unicode.IsSpace) >= 0:
		return fmt.Errorf("directory: address %q contains whitespace", d.Addr)
	case d.OnionKey.IsZero():
		return fmt.Errorf("directory: descriptor %s missing onion key", d.Nickname)
	case d.BandwidthKBps < 0:
		return fmt.Errorf("directory: descriptor %s negative bandwidth", d.Nickname)
	}
	return nil
}

// Line encodes the descriptor as one consensus line:
//
//	relay <nickname> <addr> <onionkey-hex> <bandwidth-kbps> <exit|noexit>
func (d *Descriptor) Line() string {
	exit := "noexit"
	if d.Exit {
		exit = "exit"
	}
	return fmt.Sprintf("relay %s %s %s %.1f %s",
		d.Nickname, d.Addr, hex.EncodeToString(d.OnionKey[:]), d.BandwidthKBps, exit)
}

// ParseLine decodes one consensus line.
func ParseLine(line string) (*Descriptor, error) {
	f := strings.Fields(line)
	if len(f) != 6 || f[0] != "relay" {
		return nil, fmt.Errorf("directory: malformed line %q", line)
	}
	keyRaw, err := hex.DecodeString(f[3])
	if err != nil || len(keyRaw) != onion.KeyLen {
		return nil, fmt.Errorf("directory: bad onion key in %q", line)
	}
	bw, err := strconv.ParseFloat(f[4], 64)
	if err != nil {
		return nil, fmt.Errorf("directory: bad bandwidth in %q", line)
	}
	d := &Descriptor{Nickname: f[1], Addr: f[2], BandwidthKBps: bw}
	copy(d.OnionKey[:], keyRaw)
	switch f[5] {
	case "exit":
		d.Exit = true
	case "noexit":
	default:
		return nil, fmt.Errorf("directory: bad exit flag in %q", line)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// DeltaKind classifies one consensus change.
type DeltaKind int

const (
	// DeltaJoin: a relay entered the consensus.
	DeltaJoin DeltaKind = iota
	// DeltaLeave: a relay left the consensus.
	DeltaLeave
	// DeltaRotate: a relay's descriptor changed in place (typically an
	// onion-key rotation; the generation counter advances).
	DeltaRotate
)

func (k DeltaKind) String() string {
	switch k {
	case DeltaJoin:
		return "join"
	case DeltaLeave:
		return "leave"
	case DeltaRotate:
		return "rotate"
	}
	return fmt.Sprintf("DeltaKind(%d)", int(k))
}

// ConsensusDelta is one versioned consensus change. Every mutation of the
// published relay set advances the epoch by exactly one and produces
// exactly one delta, so a consumer that has seen epoch E is up to date
// after applying every delta with Epoch > E in order.
type ConsensusDelta struct {
	// Epoch is the consensus epoch this change produced.
	Epoch uint64
	// Kind says what happened.
	Kind DeltaKind
	// Name is the affected relay's nickname.
	Name string
	// Desc is the descriptor after the change (nil for DeltaLeave).
	Desc *Descriptor
}

// maxDeltaLog bounds the in-memory delta history. Consumers further behind
// than this must resync from a full consensus.
const maxDeltaLog = 1024

// Registry holds the published relay population plus unpublished
// descriptors known only locally. It is safe for concurrent use.
//
// The published set is versioned: every Publish/Remove/Update of a public
// relay advances a monotonically increasing consensus epoch and appends a
// ConsensusDelta to a bounded history that Watch and DeltasSince expose.
// Unpublished descriptors never touch the epoch — they are invisible to
// consensus consumers by design.
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]*Descriptor
	public   []string // published nicknames in insertion order
	epoch    uint64
	deltas   []ConsensusDelta // trailing window, consecutive epochs
	watchers map[*watcher]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:   make(map[string]*Descriptor),
		watchers: make(map[*watcher]struct{}),
	}
}

// Publish adds a descriptor to the public consensus.
func (r *Registry) Publish(d *Descriptor) error { return r.add(d, true) }

// AddUnpublished registers a descriptor without listing it in the
// consensus — the "PublishDescriptors 0" path the paper mentions for the
// measurer's local relays w and z.
func (r *Registry) AddUnpublished(d *Descriptor) error { return r.add(d, false) }

func (r *Registry) add(d *Descriptor, public bool) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.Nickname]; dup {
		return fmt.Errorf("directory: duplicate relay %s", d.Nickname)
	}
	cp := *d
	r.byName[d.Nickname] = &cp
	if public {
		r.public = append(r.public, d.Nickname)
		pub := cp
		r.recordLocked(DeltaJoin, d.Nickname, &pub)
	}
	return nil
}

// Remove deletes a descriptor. Removing a published relay advances the
// epoch and emits a DeltaLeave; removing an unpublished one is silent.
// It reports whether the nickname was known.
func (r *Registry) Remove(nickname string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[nickname]; !ok {
		return false
	}
	delete(r.byName, nickname)
	for i, name := range r.public {
		if name == nickname {
			r.public = append(r.public[:i], r.public[i+1:]...)
			r.recordLocked(DeltaLeave, nickname, nil)
			break
		}
	}
	return true
}

// Update replaces an existing descriptor in place. A changed onion key is
// a rotation and bumps the descriptor's generation. Updating a published
// relay advances the epoch and emits a DeltaRotate.
func (r *Registry) Update(d *Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.byName[d.Nickname]
	if !ok {
		return fmt.Errorf("directory: update of unknown relay %s", d.Nickname)
	}
	cp := *d
	cp.Generation = old.Generation
	if old.OnionKey != d.OnionKey {
		cp.Generation++
	}
	r.byName[d.Nickname] = &cp
	for _, name := range r.public {
		if name == d.Nickname {
			pub := cp
			r.recordLocked(DeltaRotate, d.Nickname, &pub)
			break
		}
	}
	return nil
}

// recordLocked advances the epoch, appends the delta to the bounded
// history, and fans it out to watchers. Caller holds r.mu.
func (r *Registry) recordLocked(kind DeltaKind, name string, desc *Descriptor) {
	r.epoch++
	delta := ConsensusDelta{Epoch: r.epoch, Kind: kind, Name: name, Desc: desc}
	r.deltas = append(r.deltas, delta)
	if len(r.deltas) > maxDeltaLog {
		r.deltas = r.deltas[len(r.deltas)-maxDeltaLog:]
	}
	for w := range r.watchers {
		w.push(delta)
	}
}

// Epoch returns the current consensus epoch.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// DeltasSince returns every delta with Epoch > since, oldest first. The
// second result is false when the bounded history no longer reaches back
// to since — the consumer must resync from a full consensus instead.
func (r *Registry) DeltasSince(since uint64) ([]ConsensusDelta, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if since >= r.epoch {
		return nil, true
	}
	if len(r.deltas) == 0 || r.deltas[0].Epoch > since+1 {
		return nil, false
	}
	var out []ConsensusDelta
	for _, d := range r.deltas {
		if d.Epoch > since {
			cp := d
			if d.Desc != nil {
				dc := *d.Desc
				cp.Desc = &dc
			}
			out = append(out, cp)
		}
	}
	return out, true
}

// ApplyDelta applies a delta produced elsewhere to this registry, keeping
// a mirror in step with its origin. The mirror's epoch jumps to the
// delta's epoch.
func (r *Registry) ApplyDelta(delta ConsensusDelta) error {
	switch delta.Kind {
	case DeltaJoin:
		if delta.Desc == nil {
			return errors.New("directory: join delta without descriptor")
		}
		r.Remove(delta.Name) // idempotent re-join
		if err := r.Publish(delta.Desc); err != nil {
			return err
		}
	case DeltaLeave:
		r.Remove(delta.Name)
	case DeltaRotate:
		if delta.Desc == nil {
			return errors.New("directory: rotate delta without descriptor")
		}
		if err := r.Update(delta.Desc); err != nil {
			// A rotate for a relay the mirror never saw joins it.
			if err := r.Publish(delta.Desc); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("directory: unknown delta kind %d", int(delta.Kind))
	}
	r.mu.Lock()
	r.epoch = delta.Epoch
	r.mu.Unlock()
	return nil
}

// resync folds a freshly fetched consensus into this registry after the
// origin's delta log no longer reached back to our epoch. The missed
// churn is synthesized as join/leave/rotate deltas — assigned sequential
// epochs capped at the origin's, so watchers still observe every change
// in a strictly increasing order — and the epoch then jumps to the
// origin's. Used by Mirror.
func (r *Registry) resync(fresh *Registry) {
	target := fresh.Epoch()
	current := make(map[string]*Descriptor)
	var names []string
	for _, d := range fresh.Consensus() {
		current[d.Nickname] = d
		names = append(names, d.Nickname)
	}
	sort.Strings(names)
	next := r.Epoch()
	synth := func(kind DeltaKind, name string, desc *Descriptor) {
		if next < target {
			next++
		}
		_ = r.ApplyDelta(ConsensusDelta{Epoch: next, Kind: kind, Name: name, Desc: desc})
	}
	for _, d := range r.Consensus() {
		if _, still := current[d.Nickname]; !still {
			synth(DeltaLeave, d.Nickname, nil)
		}
	}
	for _, name := range names {
		d := current[name]
		old, ok := r.Lookup(name)
		switch {
		case !ok:
			synth(DeltaJoin, name, d)
		case old.Fingerprint() != d.Fingerprint():
			synth(DeltaRotate, name, d)
		}
	}
	r.mu.Lock()
	if r.epoch < target {
		r.epoch = target
	}
	r.mu.Unlock()
}

// watcher is one Watch subscription: an unbounded cond-backed queue the
// registry pushes into under its own lock, drained by a pump goroutine
// into the subscriber's channel. Deltas are never dropped; a slow consumer
// only grows its private queue.
type watcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []ConsensusDelta
	closed bool
}

func (w *watcher) push(d ConsensusDelta) {
	w.mu.Lock()
	if !w.closed {
		w.queue = append(w.queue, d)
	}
	w.mu.Unlock()
	w.cond.Signal()
}

func (w *watcher) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Signal()
}

// next blocks until a delta is queued or the watcher closes.
func (w *watcher) next() (ConsensusDelta, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) == 0 && !w.closed {
		w.cond.Wait()
	}
	if len(w.queue) == 0 {
		return ConsensusDelta{}, false
	}
	d := w.queue[0]
	w.queue = w.queue[1:]
	return d, true
}

// Watch subscribes to consensus changes. Every delta recorded after the
// call is delivered in epoch order on the returned channel until ctx is
// cancelled, at which point the channel closes. Subscribers that need the
// starting state should snapshot Consensus/Epoch first and discard deltas
// at or below that epoch.
func (r *Registry) Watch(ctx context.Context) <-chan ConsensusDelta {
	w := &watcher{}
	w.cond = sync.NewCond(&w.mu)
	r.mu.Lock()
	r.watchers[w] = struct{}{}
	r.mu.Unlock()

	ch := make(chan ConsensusDelta)
	go func() { // closer: detach on cancel
		<-ctx.Done()
		r.mu.Lock()
		delete(r.watchers, w)
		r.mu.Unlock()
		w.close()
	}()
	go func() { // pump: queue → channel
		defer close(ch)
		for {
			d, ok := w.next()
			if !ok {
				return
			}
			select {
			case ch <- d:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// Lookup returns the descriptor for nickname (published or not).
func (r *Registry) Lookup(nickname string) (*Descriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[nickname]
	if !ok {
		return nil, false
	}
	cp := *d
	return &cp, true
}

// Consensus returns the published descriptors in insertion order.
func (r *Registry) Consensus() []*Descriptor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Descriptor, 0, len(r.public))
	for _, name := range r.public {
		cp := *r.byName[name]
		out = append(out, &cp)
	}
	return out
}

// Len returns the number of published relays.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.public)
}

// EncodeConsensus writes the consensus document. The header carries the
// epoch so mirrors can ask for deltas later.
func (r *Registry) EncodeConsensus(w io.Writer) error {
	r.mu.RLock()
	epoch := r.epoch
	r.mu.RUnlock()
	descs := r.Consensus()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "consensus relays=%d epoch=%d\n", len(descs), epoch)
	for _, d := range descs {
		fmt.Fprintln(bw, d.Line())
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// DecodeConsensus parses a consensus document into a fresh registry. Both
// the epoch-carrying header and the legacy epoch-free form decode; a
// legacy document leaves the registry at the epoch its own publishes
// accumulated.
func DecodeConsensus(rd io.Reader) (*Registry, error) {
	sc := bufio.NewScanner(rd)
	if !sc.Scan() {
		return nil, errors.New("directory: empty consensus")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "consensus relays=") {
		return nil, fmt.Errorf("directory: bad header %q", header)
	}
	rest := strings.TrimPrefix(header, "consensus relays=")
	countField, epochField, hasEpoch := strings.Cut(rest, " epoch=")
	want, err := strconv.Atoi(countField)
	if err != nil {
		return nil, fmt.Errorf("directory: bad header %q", header)
	}
	var epoch uint64
	if hasEpoch {
		epoch, err = strconv.ParseUint(epochField, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("directory: bad header %q", header)
		}
	}
	reg := NewRegistry()
	for sc.Scan() {
		line := sc.Text()
		if line == "end" {
			if reg.Len() != want {
				return nil, fmt.Errorf("directory: header says %d relays, got %d", want, reg.Len())
			}
			if hasEpoch {
				// The synthetic join deltas accumulated while
				// re-publishing don't describe real history at the
				// origin; force mirrors behind this epoch to resync.
				reg.mu.Lock()
				reg.epoch = epoch
				reg.deltas = nil
				reg.mu.Unlock()
			}
			return reg, nil
		}
		d, err := ParseLine(line)
		if err != nil {
			return nil, err
		}
		if err := reg.Publish(d); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("directory: read consensus: %w", err)
	}
	return nil, errors.New("directory: truncated consensus (no end line)")
}

// WeightedPick selects one of descs with probability proportional to
// bandwidth, the default Tor relay-selection rule the paper describes in
// §5.2 ("a Tor client selects these relays at random according to the
// bandwidth capacity of each router"). A nil or all-zero-bandwidth input
// falls back to uniform selection.
func WeightedPick(descs []*Descriptor, rng *rand.Rand) (*Descriptor, error) {
	if len(descs) == 0 {
		return nil, errors.New("directory: no relays to pick from")
	}
	var total float64
	for _, d := range descs {
		total += d.BandwidthKBps
	}
	if total <= 0 {
		return descs[rng.Intn(len(descs))], nil
	}
	x := rng.Float64() * total
	for _, d := range descs {
		x -= d.BandwidthKBps
		if x < 0 {
			return d, nil
		}
	}
	return descs[len(descs)-1], nil
}

// PickPath selects a distinct-relay path of the given length: weighted
// picks without replacement, exit-capable relay last. This mirrors default
// Tor path construction closely enough for the reproduction's purposes.
func PickPath(descs []*Descriptor, length int, rng *rand.Rand) ([]*Descriptor, error) {
	if length < 2 {
		return nil, fmt.Errorf("directory: paths need ≥ 2 hops, got %d", length)
	}
	if len(descs) < length {
		return nil, fmt.Errorf("directory: %d relays cannot form a %d-hop path", len(descs), length)
	}
	pool := append([]*Descriptor(nil), descs...)
	// Exit first: pick from exit-capable relays.
	var exits []*Descriptor
	for _, d := range pool {
		if d.Exit {
			exits = append(exits, d)
		}
	}
	if len(exits) == 0 {
		return nil, errors.New("directory: no exit-capable relays")
	}
	exit, err := WeightedPick(exits, rng)
	if err != nil {
		return nil, err
	}
	path := make([]*Descriptor, length)
	path[length-1] = exit
	remove(&pool, exit.Nickname)
	for i := 0; i < length-1; i++ {
		d, err := WeightedPick(pool, rng)
		if err != nil {
			return nil, err
		}
		path[i] = d
		remove(&pool, d.Nickname)
	}
	return path, nil
}

func remove(pool *[]*Descriptor, nickname string) {
	s := *pool
	for i, d := range s {
		if d.Nickname == nickname {
			s[i] = s[len(s)-1]
			*pool = s[:len(s)-1]
			return
		}
	}
}

// SortByName orders descriptors by nickname, for stable output.
func SortByName(descs []*Descriptor) {
	sort.Slice(descs, func(i, j int) bool { return descs[i].Nickname < descs[j].Nickname })
}
