// Package directory implements mintor's relay directory: descriptors, a
// consensus document with a text encoding, bandwidth-weighted relay
// selection, and a minimal fetch protocol.
//
// The paper's client learns relays from the Tor directory authorities and
// can optionally keep its two local relays unpublished by hard-coding their
// descriptors (§4.1, "PublishDescriptors 0"); Registry supports both
// published and unpublished descriptors for the same reason.
package directory

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode"

	"ting/internal/onion"
)

// Descriptor describes one relay: everything a client needs to extend a
// circuit through it.
type Descriptor struct {
	// Nickname is the relay's unique name.
	Nickname string
	// Addr is the relay's link address (a PipeNet name or host:port).
	Addr string
	// OnionKey is the relay's public handshake key.
	OnionKey onion.PublicKey
	// BandwidthKBps is the advertised bandwidth used for weighted
	// selection.
	BandwidthKBps float64
	// Exit reports whether the relay permits exit streams.
	Exit bool
}

// Validate checks the descriptor for completeness.
func (d *Descriptor) Validate() error {
	switch {
	case d.Nickname == "":
		return errors.New("directory: descriptor missing nickname")
	case strings.IndexFunc(d.Nickname, unicode.IsSpace) >= 0:
		return fmt.Errorf("directory: nickname %q contains whitespace", d.Nickname)
	case d.Addr == "":
		return fmt.Errorf("directory: descriptor %s missing address", d.Nickname)
	case strings.IndexFunc(d.Addr, unicode.IsSpace) >= 0:
		return fmt.Errorf("directory: address %q contains whitespace", d.Addr)
	case d.OnionKey.IsZero():
		return fmt.Errorf("directory: descriptor %s missing onion key", d.Nickname)
	case d.BandwidthKBps < 0:
		return fmt.Errorf("directory: descriptor %s negative bandwidth", d.Nickname)
	}
	return nil
}

// Line encodes the descriptor as one consensus line:
//
//	relay <nickname> <addr> <onionkey-hex> <bandwidth-kbps> <exit|noexit>
func (d *Descriptor) Line() string {
	exit := "noexit"
	if d.Exit {
		exit = "exit"
	}
	return fmt.Sprintf("relay %s %s %s %.1f %s",
		d.Nickname, d.Addr, hex.EncodeToString(d.OnionKey[:]), d.BandwidthKBps, exit)
}

// ParseLine decodes one consensus line.
func ParseLine(line string) (*Descriptor, error) {
	f := strings.Fields(line)
	if len(f) != 6 || f[0] != "relay" {
		return nil, fmt.Errorf("directory: malformed line %q", line)
	}
	keyRaw, err := hex.DecodeString(f[3])
	if err != nil || len(keyRaw) != onion.KeyLen {
		return nil, fmt.Errorf("directory: bad onion key in %q", line)
	}
	bw, err := strconv.ParseFloat(f[4], 64)
	if err != nil {
		return nil, fmt.Errorf("directory: bad bandwidth in %q", line)
	}
	d := &Descriptor{Nickname: f[1], Addr: f[2], BandwidthKBps: bw}
	copy(d.OnionKey[:], keyRaw)
	switch f[5] {
	case "exit":
		d.Exit = true
	case "noexit":
	default:
		return nil, fmt.Errorf("directory: bad exit flag in %q", line)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Registry holds the published relay population plus unpublished
// descriptors known only locally. It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Descriptor
	public []string // published nicknames in insertion order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Descriptor)}
}

// Publish adds a descriptor to the public consensus.
func (r *Registry) Publish(d *Descriptor) error { return r.add(d, true) }

// AddUnpublished registers a descriptor without listing it in the
// consensus — the "PublishDescriptors 0" path the paper mentions for the
// measurer's local relays w and z.
func (r *Registry) AddUnpublished(d *Descriptor) error { return r.add(d, false) }

func (r *Registry) add(d *Descriptor, public bool) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.Nickname]; dup {
		return fmt.Errorf("directory: duplicate relay %s", d.Nickname)
	}
	cp := *d
	r.byName[d.Nickname] = &cp
	if public {
		r.public = append(r.public, d.Nickname)
	}
	return nil
}

// Lookup returns the descriptor for nickname (published or not).
func (r *Registry) Lookup(nickname string) (*Descriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byName[nickname]
	if !ok {
		return nil, false
	}
	cp := *d
	return &cp, true
}

// Consensus returns the published descriptors in insertion order.
func (r *Registry) Consensus() []*Descriptor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Descriptor, 0, len(r.public))
	for _, name := range r.public {
		cp := *r.byName[name]
		out = append(out, &cp)
	}
	return out
}

// Len returns the number of published relays.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.public)
}

// EncodeConsensus writes the consensus document.
func (r *Registry) EncodeConsensus(w io.Writer) error {
	descs := r.Consensus()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "consensus relays=%d\n", len(descs))
	for _, d := range descs {
		fmt.Fprintln(bw, d.Line())
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// DecodeConsensus parses a consensus document into a fresh registry.
func DecodeConsensus(rd io.Reader) (*Registry, error) {
	sc := bufio.NewScanner(rd)
	if !sc.Scan() {
		return nil, errors.New("directory: empty consensus")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "consensus relays=") {
		return nil, fmt.Errorf("directory: bad header %q", header)
	}
	want, err := strconv.Atoi(strings.TrimPrefix(header, "consensus relays="))
	if err != nil {
		return nil, fmt.Errorf("directory: bad header %q", header)
	}
	reg := NewRegistry()
	for sc.Scan() {
		line := sc.Text()
		if line == "end" {
			if reg.Len() != want {
				return nil, fmt.Errorf("directory: header says %d relays, got %d", want, reg.Len())
			}
			return reg, nil
		}
		d, err := ParseLine(line)
		if err != nil {
			return nil, err
		}
		if err := reg.Publish(d); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("directory: read consensus: %w", err)
	}
	return nil, errors.New("directory: truncated consensus (no end line)")
}

// WeightedPick selects one of descs with probability proportional to
// bandwidth, the default Tor relay-selection rule the paper describes in
// §5.2 ("a Tor client selects these relays at random according to the
// bandwidth capacity of each router"). A nil or all-zero-bandwidth input
// falls back to uniform selection.
func WeightedPick(descs []*Descriptor, rng *rand.Rand) (*Descriptor, error) {
	if len(descs) == 0 {
		return nil, errors.New("directory: no relays to pick from")
	}
	var total float64
	for _, d := range descs {
		total += d.BandwidthKBps
	}
	if total <= 0 {
		return descs[rng.Intn(len(descs))], nil
	}
	x := rng.Float64() * total
	for _, d := range descs {
		x -= d.BandwidthKBps
		if x < 0 {
			return d, nil
		}
	}
	return descs[len(descs)-1], nil
}

// PickPath selects a distinct-relay path of the given length: weighted
// picks without replacement, exit-capable relay last. This mirrors default
// Tor path construction closely enough for the reproduction's purposes.
func PickPath(descs []*Descriptor, length int, rng *rand.Rand) ([]*Descriptor, error) {
	if length < 2 {
		return nil, fmt.Errorf("directory: paths need ≥ 2 hops, got %d", length)
	}
	if len(descs) < length {
		return nil, fmt.Errorf("directory: %d relays cannot form a %d-hop path", len(descs), length)
	}
	pool := append([]*Descriptor(nil), descs...)
	// Exit first: pick from exit-capable relays.
	var exits []*Descriptor
	for _, d := range pool {
		if d.Exit {
			exits = append(exits, d)
		}
	}
	if len(exits) == 0 {
		return nil, errors.New("directory: no exit-capable relays")
	}
	exit, err := WeightedPick(exits, rng)
	if err != nil {
		return nil, err
	}
	path := make([]*Descriptor, length)
	path[length-1] = exit
	remove(&pool, exit.Nickname)
	for i := 0; i < length-1; i++ {
		d, err := WeightedPick(pool, rng)
		if err != nil {
			return nil, err
		}
		path[i] = d
		remove(&pool, d.Nickname)
	}
	return path, nil
}

func remove(pool *[]*Descriptor, nickname string) {
	s := *pool
	for i, d := range s {
		if d.Nickname == nickname {
			s[i] = s[len(s)-1]
			*pool = s[:len(s)-1]
			return
		}
	}
}

// SortByName orders descriptors by nickname, for stable output.
func SortByName(descs []*Descriptor) {
	sort.Slice(descs, func(i, j int) bool { return descs[i].Nickname < descs[j].Nickname })
}
