package directory

import (
	"context"
	"net"
	"testing"
	"time"

	"ting/internal/telemetry"
)

// TestMirrorBacksOffOnFetchFailure points a mirror at a dead address and
// checks both halves of the failure contract: the fetch_errors counter
// counts every failed poll, and the polls themselves thin out
// exponentially instead of hammering at the configured interval.
func TestMirrorBacksOffOnFetchFailure(t *testing.T) {
	// A listener that is closed immediately: connections are refused fast,
	// so every poll fails quickly and the test measures cadence, not
	// timeouts.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	treg := telemetry.New()
	mirror := NewRegistry()
	const interval = 2 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	MirrorTelemetry(ctx, addr, mirror, interval, treg)

	fails := treg.Counter("directory.mirror.fetch_errors").Value()
	if fails < 1 {
		t.Fatal("no fetch errors counted against a dead origin")
	}
	// Without backoff a 2ms cadence would poll ~75 times in 150ms. With
	// exponential backoff the delays run 2, 4, 8, 16, 32, 64… ms (±50%
	// jitter), so even a generous bound sits far below the fixed-cadence
	// count.
	if fails > 25 {
		t.Errorf("%d failed polls in 150ms at %s interval: backoff not applied", fails, interval)
	}
}

// TestMirrorRecoversCadenceAfterBackoff: once the origin answers again, a
// backed-off mirror snaps back to the configured interval and keeps
// following deltas (the fast-follow behavior TestMirrorFollowsOrigin pins
// for the never-failed case).
func TestMirrorRecoversCadenceAfterBackoff(t *testing.T) {
	origin := NewRegistry()
	if err := origin.Publish(testDesc(t, "alpha", true, 100)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(origin)
	// Reserve a port, then close it: the mirror's first polls are refused
	// (a bound-but-unserved listener would queue them in the accept backlog
	// instead). The origin comes up on the same port afterwards.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	mirror := NewRegistry()
	treg := telemetry.New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The server is NOT serving yet: the first polls fail and back off.
		MirrorTelemetry(ctx, addr, mirror, 2*time.Millisecond, treg)
	}()

	time.Sleep(20 * time.Millisecond) // let a few failures accrue
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	go srv.Serve(ln2)
	defer srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for mirror.Epoch() < origin.Epoch() {
		if time.Now().After(deadline) {
			t.Fatalf("mirror never caught up after origin came back (epoch %d < %d)", mirror.Epoch(), origin.Epoch())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if treg.Counter("directory.mirror.fetch_errors").Value() == 0 {
		t.Error("expected at least one counted failure before the origin came up")
	}
	cancel()
	<-done
}
