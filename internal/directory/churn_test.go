package directory

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"ting/internal/onion"
)

func TestEpochAdvancesPerPublicMutation(t *testing.T) {
	reg := NewRegistry()
	if reg.Epoch() != 0 {
		t.Fatalf("fresh registry epoch = %d", reg.Epoch())
	}
	if err := reg.Publish(testDesc(t, "a", true, 100)); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddUnpublished(testDesc(t, "w", false, 10)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Epoch(); got != 1 {
		t.Errorf("epoch after publish+unpublished = %d, want 1 (unpublished is epoch-invisible)", got)
	}
	if !reg.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if got := reg.Epoch(); got != 2 {
		t.Errorf("epoch after remove = %d, want 2", got)
	}
	// Removing the unpublished relay and a ghost must not move the epoch.
	if !reg.Remove("w") {
		t.Error("Remove(w) = false")
	}
	if reg.Remove("ghost") {
		t.Error("Remove(ghost) = true")
	}
	if got := reg.Epoch(); got != 2 {
		t.Errorf("epoch after silent removes = %d, want 2", got)
	}
}

func TestUpdateRotationBumpsGeneration(t *testing.T) {
	reg := NewRegistry()
	d := testDesc(t, "r", true, 100)
	if err := reg.Publish(d); err != nil {
		t.Fatal(err)
	}
	// Same key: an update, not a rotation.
	same := *d
	same.BandwidthKBps = 200
	if err := reg.Update(&same); err != nil {
		t.Fatal(err)
	}
	got, _ := reg.Lookup("r")
	if got.Generation != 0 {
		t.Errorf("same-key update bumped generation to %d", got.Generation)
	}
	if got.BandwidthKBps != 200 {
		t.Errorf("update lost bandwidth change: %v", got.BandwidthKBps)
	}
	// New key: a rotation.
	rot := *d
	id, err := onion.NewIdentity(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	rot.OnionKey = id.Public()
	if err := reg.Update(&rot); err != nil {
		t.Fatal(err)
	}
	got, _ = reg.Lookup("r")
	if got.Generation != 1 {
		t.Errorf("rotation generation = %d, want 1", got.Generation)
	}
	if got.Fingerprint() == d.Fingerprint() {
		t.Error("fingerprint unchanged across rotation")
	}
	if err := reg.Update(testDesc(t, "ghost", false, 1)); err == nil {
		t.Error("Update of unknown relay succeeded")
	}
	if got := reg.Epoch(); got != 3 {
		t.Errorf("epoch = %d, want 3 (publish + 2 updates)", got)
	}
}

func TestDeltasSinceAndResync(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"a", "b", "c"} {
		if err := reg.Publish(testDesc(t, name, false, 100)); err != nil {
			t.Fatal(err)
		}
	}
	reg.Remove("b")
	deltas, ok := reg.DeltasSince(0)
	if !ok || len(deltas) != 4 {
		t.Fatalf("DeltasSince(0) = %d deltas, ok=%v", len(deltas), ok)
	}
	for i, d := range deltas {
		if d.Epoch != uint64(i+1) {
			t.Errorf("delta %d epoch = %d", i, d.Epoch)
		}
	}
	if deltas[3].Kind != DeltaLeave || deltas[3].Name != "b" || deltas[3].Desc != nil {
		t.Errorf("leave delta = %+v", deltas[3])
	}
	if deltas[0].Kind != DeltaJoin || deltas[0].Desc == nil {
		t.Errorf("join delta = %+v", deltas[0])
	}
	// Up to date: empty and ok.
	if d, ok := reg.DeltasSince(4); !ok || len(d) != 0 {
		t.Errorf("DeltasSince(current) = %v, ok=%v", d, ok)
	}
	// A mirror can replay the deltas and converge.
	mirror := NewRegistry()
	for _, d := range deltas {
		if err := mirror.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	if mirror.Epoch() != reg.Epoch() || mirror.Len() != reg.Len() {
		t.Errorf("mirror epoch=%d len=%d, origin epoch=%d len=%d",
			mirror.Epoch(), mirror.Len(), reg.Epoch(), reg.Len())
	}
	if _, ok := mirror.Lookup("b"); ok {
		t.Error("mirror still has removed relay b")
	}
}

func TestDeltaLogBounded(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Publish(testDesc(t, "seed", false, 1)); err != nil {
		t.Fatal(err)
	}
	// Blow past the history bound with churn on a second relay.
	for i := 0; i < maxDeltaLog+10; i += 2 {
		if err := reg.Publish(testDesc(t, "flappy", false, 1)); err != nil {
			t.Fatal(err)
		}
		reg.Remove("flappy")
	}
	if _, ok := reg.DeltasSince(0); ok {
		t.Error("DeltasSince(0) claims coverage past the bounded history")
	}
	if _, ok := reg.DeltasSince(reg.Epoch() - 5); !ok {
		t.Error("recent span not covered")
	}
}

func TestWatchDeliversInOrder(t *testing.T) {
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := reg.Watch(ctx)

	go func() {
		for _, name := range []string{"a", "b", "c"} {
			_ = reg.Publish(testDesc(t, name, false, 100))
		}
		reg.Remove("a")
	}()

	var got []ConsensusDelta
	timeout := time.After(5 * time.Second)
	for len(got) < 4 {
		select {
		case d := <-ch:
			got = append(got, d)
		case <-timeout:
			t.Fatalf("timed out after %d deltas", len(got))
		}
	}
	for i, d := range got {
		if d.Epoch != uint64(i+1) {
			t.Errorf("delta %d arrived with epoch %d", i, d.Epoch)
		}
	}
	if got[3].Kind != DeltaLeave || got[3].Name != "a" {
		t.Errorf("last delta = %+v", got[3])
	}
	// Cancelling closes the channel and detaches the watcher.
	cancel()
	for range ch {
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		reg.mu.RLock()
		n := len(reg.watchers)
		reg.mu.RUnlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher not detached after cancel: %d left", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConsensusHeaderEpochRoundTrip(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"a", "b"} {
		if err := reg.Publish(testDesc(t, name, false, 100)); err != nil {
			t.Fatal(err)
		}
	}
	reg.Remove("a")

	var sb strings.Builder
	if err := reg.EncodeConsensus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "consensus relays=1 epoch=3\n") {
		t.Fatalf("header = %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
	got, err := DecodeConsensus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != 3 {
		t.Errorf("decoded epoch = %d, want 3", got.Epoch())
	}
	// A mirror decoded from a full document must resync, not replay the
	// synthetic joins it performed while decoding.
	if _, ok := got.DeltasSince(0); ok {
		t.Error("decoded mirror claims delta coverage from 0")
	}

	// Legacy headers without an epoch still decode.
	legacy := "consensus relays=0\nend\n"
	if _, err := DecodeConsensus(strings.NewReader(legacy)); err != nil {
		t.Fatalf("legacy header rejected: %v", err)
	}
}

func TestServerServesDeltasAndResync(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"a", "b"} {
		if err := reg.Publish(testDesc(t, name, true, 100)); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// A mirror at epoch 0 with full server history gets deltas.
	deltas, full, err := FetchDeltas(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full != nil {
		t.Fatal("unexpected resync")
	}
	if len(deltas) != 2 || deltas[0].Name != "a" || deltas[1].Name != "b" {
		t.Fatalf("deltas = %+v", deltas)
	}

	// More churn, including a rotation.
	reg.Remove("a")
	rot, _ := reg.Lookup("b")
	id, err := onion.NewIdentity(rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	rot.OnionKey = id.Public()
	if err := reg.Update(rot); err != nil {
		t.Fatal(err)
	}
	deltas, full, err = FetchDeltas(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if full != nil || len(deltas) != 2 {
		t.Fatalf("deltas = %+v, full = %v", deltas, full)
	}
	if deltas[0].Kind != DeltaLeave || deltas[0].Name != "a" {
		t.Errorf("delta[0] = %+v", deltas[0])
	}
	if deltas[1].Kind != DeltaRotate || deltas[1].Desc == nil || deltas[1].Desc.OnionKey != rot.OnionKey {
		t.Errorf("delta[1] = %+v", deltas[1])
	}

	// Force the history bound and confirm the resync path.
	reg.mu.Lock()
	reg.deltas = reg.deltas[len(reg.deltas)-1:]
	reg.mu.Unlock()
	deltas, full, err = FetchDeltas(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if deltas != nil || full == nil {
		t.Fatalf("expected resync, got deltas=%v full=%v", deltas, full)
	}
	if full.Epoch() != reg.Epoch() || full.Len() != reg.Len() {
		t.Errorf("resync consensus epoch=%d len=%d, origin epoch=%d len=%d",
			full.Epoch(), full.Len(), reg.Epoch(), reg.Len())
	}
}

// TestFetchTimeoutStalledServer pins the satellite fix: a peer that
// accepts and then says nothing cannot hang Fetch forever.
func TestFetchTimeoutStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept and stall
		}
	}()
	start := time.Now()
	if _, err := FetchTimeout(ln.Addr().String(), 100*time.Millisecond); err == nil {
		t.Fatal("fetch from stalled server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fetch took %v despite 100ms timeout", elapsed)
	}
}

// TestServerSlowLorisTimeout pins the server half: a client that connects
// and never finishes its request line is cut off by the conn deadline.
func TestServerSlowLorisTimeout(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	srv.Timeout = 100 * time.Millisecond
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET conse")); err != nil { // never the newline
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a half-request")
	}
}

// TestMirrorFollowsOrigin polls a live directory server and checks that
// origin churn — join, leave, rotate — lands in the mirror with origin
// epochs, firing the mirror's own watchers.
func TestMirrorFollowsOrigin(t *testing.T) {
	origin := NewRegistry()
	for _, name := range []string{"a", "b"} {
		if err := origin.Publish(testDesc(t, name, false, 100)); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(origin)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	mirror, err := Fetch(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := mirror.Epoch(); got != origin.Epoch() {
		t.Fatalf("mirror epoch = %d, origin %d", got, origin.Epoch())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watch := mirror.Watch(ctx)
	go Mirror(ctx, addr, mirror, 10*time.Millisecond)

	if err := origin.Publish(testDesc(t, "c", false, 100)); err != nil {
		t.Fatal(err)
	}
	origin.Remove("a")
	rot := testDesc(t, "b", false, 100)
	id, err := onion.NewIdentity(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	rot.OnionKey = id.Public()
	if err := origin.Update(rot); err != nil {
		t.Fatal(err)
	}

	want := []struct {
		kind DeltaKind
		name string
	}{{DeltaJoin, "c"}, {DeltaLeave, "a"}, {DeltaRotate, "b"}}
	for i, w := range want {
		select {
		case d := <-watch:
			if d.Kind != w.kind || d.Name != w.name {
				t.Fatalf("delta %d = (%v, %s), want (%v, %s)", i, d.Kind, d.Name, w.kind, w.name)
			}
			if d.Epoch != uint64(3+i) {
				t.Errorf("delta %d epoch = %d, want %d", i, d.Epoch, 3+i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("mirror never delivered delta %d (%v %s)", i, w.kind, w.name)
		}
	}
	if _, ok := mirror.Lookup("a"); ok {
		t.Error("mirror still lists the removed relay")
	}
	c, ok := mirror.Lookup("c")
	if !ok || c.Addr != "addr-c" {
		t.Errorf("mirror join = (%+v, %v)", c, ok)
	}
	b, _ := mirror.Lookup("b")
	if b.Fingerprint() != rot.Fingerprint() {
		t.Error("mirror missed the key rotation")
	}
	if got := mirror.Epoch(); got != origin.Epoch() {
		t.Errorf("mirror epoch = %d, origin %d", got, origin.Epoch())
	}
}

// TestResyncSynthesizesDeltas feeds a stale mirror a fresh consensus the
// delta log no longer reaches and checks the missed churn is synthesized:
// a leave for the dropped relay, a join for the newcomer, a rotate for
// the changed key — in strictly increasing epochs capped at the origin's.
func TestResyncSynthesizesDeltas(t *testing.T) {
	mirror := NewRegistry()
	for _, name := range []string{"a", "b", "c"} {
		if err := mirror.Publish(testDesc(t, name, false, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// The fresh consensus dropped a, kept b with a new key, kept c
	// unchanged (same descriptor — key generation is not deterministic,
	// so reuse the mirror's), and gained d — pretend many epochs passed.
	fresh := NewRegistry()
	oldB, _ := mirror.Lookup("b")
	rot := *oldB
	id, err := onion.NewIdentity(rand.New(rand.NewSource(98)))
	if err != nil {
		t.Fatal(err)
	}
	rot.OnionKey = id.Public()
	sameC, _ := mirror.Lookup("c")
	for _, d := range []*Descriptor{&rot, sameC, testDesc(t, "d", false, 100)} {
		if err := fresh.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	fresh.mu.Lock()
	fresh.epoch = 40
	fresh.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watch := mirror.Watch(ctx)
	mirror.resync(fresh)

	want := []struct {
		kind DeltaKind
		name string
	}{{DeltaLeave, "a"}, {DeltaRotate, "b"}, {DeltaJoin, "d"}}
	last := uint64(3) // the mirror's own epoch before the resync
	for i, w := range want {
		select {
		case d := <-watch:
			if d.Kind != w.kind || d.Name != w.name {
				t.Fatalf("synthesized delta %d = (%v, %s), want (%v, %s)", i, d.Kind, d.Name, w.kind, w.name)
			}
			if d.Epoch <= last || d.Epoch > 40 {
				t.Errorf("synthesized delta %d epoch = %d, want in (%d, 40]", i, d.Epoch, last)
			}
			last = d.Epoch
		case <-time.After(5 * time.Second):
			t.Fatalf("resync never delivered delta %d (%v %s)", i, w.kind, w.name)
		}
	}
	if got := mirror.Epoch(); got != 40 {
		t.Errorf("mirror epoch after resync = %d, want 40", got)
	}
	if _, ok := mirror.Lookup("a"); ok {
		t.Error("resynced mirror still lists a")
	}
	if d, ok := mirror.Lookup("d"); !ok || d.Addr != "addr-d" {
		t.Errorf("resynced mirror join = (%+v, %v)", d, ok)
	}
	if b, _ := mirror.Lookup("b"); b.Fingerprint() != rot.Fingerprint() {
		t.Error("resynced mirror missed the rotation")
	}
	// An already-converged resync is a no-op: no deltas, epoch keeps.
	mirror.resync(fresh)
	select {
	case d := <-watch:
		t.Errorf("converged resync produced delta %+v", d)
	case <-time.After(50 * time.Millisecond):
	}
}
