package directory

import (
	"bytes"
	"math"
	"math/rand"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"unicode"

	"ting/internal/onion"
)

func testDesc(t *testing.T, name string, exit bool, bw float64) *Descriptor {
	t.Helper()
	id, err := onion.NewIdentity(rand.New(rand.NewSource(int64(len(name)) + int64(name[len(name)-1]))))
	if err != nil {
		t.Fatal(err)
	}
	return &Descriptor{
		Nickname:      name,
		Addr:          "addr-" + name,
		OnionKey:      id.Public(),
		BandwidthKBps: bw,
		Exit:          exit,
	}
}

func TestDescriptorValidate(t *testing.T) {
	good := testDesc(t, "r1", true, 100)
	if err := good.Validate(); err != nil {
		t.Errorf("valid descriptor rejected: %v", err)
	}
	bad := []*Descriptor{
		{},
		{Nickname: "has space", Addr: "a", OnionKey: good.OnionKey},
		{Nickname: "r", Addr: "", OnionKey: good.OnionKey},
		{Nickname: "r", Addr: "a b", OnionKey: good.OnionKey},
		{Nickname: "r", Addr: "a"},
		{Nickname: "r", Addr: "a", OnionKey: good.OnionKey, BandwidthKBps: -1},
		{Nickname: "nb\u00a0sp", Addr: "a", OnionKey: good.OnionKey}, // unicode space
		{Nickname: "r", Addr: "a\u2028b", OnionKey: good.OnionKey},   // line separator
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad descriptor %d accepted", i)
		}
	}
}

func TestLineRoundTrip(t *testing.T) {
	for _, exit := range []bool{true, false} {
		d := testDesc(t, "roundtrip", exit, 1234.5)
		got, err := ParseLine(d.Line())
		if err != nil {
			t.Fatal(err)
		}
		if *got != *d {
			t.Errorf("round trip: %+v vs %+v", got, d)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",
		"relay",
		"notrelay a b c d e",
		"relay nick addr nothex 100 exit",
		"relay nick addr abcd 100 exit", // short key
		"relay nick addr " + strings.Repeat("ab", 32) + " NaNNaN exit",
		"relay nick addr " + strings.Repeat("ab", 32) + " 100 maybe",
		"relay nick addr " + strings.Repeat("00", 32) + " 100 exit", // zero key
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) succeeded", line)
		}
	}
}

func TestRegistryPublishLookup(t *testing.T) {
	reg := NewRegistry()
	d1 := testDesc(t, "alpha", true, 100)
	d2 := testDesc(t, "beta", false, 200)
	hidden := testDesc(t, "w-local", false, 50)
	if err := reg.Publish(d1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Publish(d2); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddUnpublished(hidden); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Errorf("Len = %d, want 2 (unpublished excluded)", reg.Len())
	}
	if _, ok := reg.Lookup("w-local"); !ok {
		t.Error("unpublished descriptor not found by Lookup")
	}
	if _, ok := reg.Lookup("ghost"); ok {
		t.Error("ghost found")
	}
	cons := reg.Consensus()
	if len(cons) != 2 || cons[0].Nickname != "alpha" || cons[1].Nickname != "beta" {
		t.Errorf("consensus = %v", cons)
	}
	if err := reg.Publish(d1); err == nil {
		t.Error("duplicate publish accepted")
	}
	// Mutating the returned copy must not affect the registry.
	cons[0].Addr = "mutated"
	if d, _ := reg.Lookup("alpha"); d.Addr == "mutated" {
		t.Error("Consensus returned aliased descriptors")
	}
}

func TestConsensusEncodeDecode(t *testing.T) {
	reg := NewRegistry()
	for i, name := range []string{"r1", "r2", "r3"} {
		if err := reg.Publish(testDesc(t, name, i%2 == 0, float64(100*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := reg.EncodeConsensus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeConsensus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("decoded %d relays", got.Len())
	}
	for _, want := range reg.Consensus() {
		d, ok := got.Lookup(want.Nickname)
		if !ok || *d != *want {
			t.Errorf("relay %s not preserved: %+v", want.Nickname, d)
		}
	}
}

func TestDecodeConsensusErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n",
		"consensus relays=2\nrelay broken\nend\n",
		"consensus relays=5\nend\n", // count mismatch
		"consensus relays=0\n",      // truncated, no end
	}
	for _, in := range cases {
		if _, err := DecodeConsensus(strings.NewReader(in)); err == nil {
			t.Errorf("DecodeConsensus(%q) succeeded", in)
		}
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	descs := []*Descriptor{
		testDesc(t, "small", false, 100),
		testDesc(t, "big", false, 900),
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		d, err := WeightedPick(descs, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[d.Nickname]++
	}
	frac := float64(counts["big"]) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("big picked %.3f of the time, want ≈ 0.9", frac)
	}
	if _, err := WeightedPick(nil, rng); err == nil {
		t.Error("empty pick should fail")
	}
}

func TestWeightedPickUniformFallback(t *testing.T) {
	descs := []*Descriptor{
		testDesc(t, "a", false, 0),
		testDesc(t, "b", false, 0),
	}
	rng := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		d, _ := WeightedPick(descs, rng)
		counts[d.Nickname]++
	}
	if math.Abs(float64(counts["a"])/10000-0.5) > 0.03 {
		t.Errorf("zero-bandwidth fallback not uniform: %v", counts)
	}
}

func TestPickPath(t *testing.T) {
	var descs []*Descriptor
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		descs = append(descs, testDesc(t, name, name == "e" || name == "d", 100))
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		path, err := PickPath(descs, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 3 {
			t.Fatalf("path length %d", len(path))
		}
		if !path[2].Exit {
			t.Errorf("last hop %s not exit-capable", path[2].Nickname)
		}
		seen := map[string]bool{}
		for _, d := range path {
			if seen[d.Nickname] {
				t.Fatalf("relay %s repeated in path", d.Nickname)
			}
			seen[d.Nickname] = true
		}
	}
	if _, err := PickPath(descs, 1, rng); err == nil {
		t.Error("1-hop path should be rejected (no one-hop circuits)")
	}
	if _, err := PickPath(descs[:2], 3, rng); err == nil {
		t.Error("path longer than population should fail")
	}
	noExit := []*Descriptor{testDesc(t, "x", false, 1), testDesc(t, "y", false, 1)}
	if _, err := PickPath(noExit, 2, rng); err == nil {
		t.Error("pathless exit population should fail")
	}
}

func TestSortByName(t *testing.T) {
	descs := []*Descriptor{testDesc(t, "zz", false, 1), testDesc(t, "aa", false, 1)}
	SortByName(descs)
	if descs[0].Nickname != "aa" {
		t.Error("not sorted")
	}
}

func TestServerFetch(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Publish(testDesc(t, "served", true, 500)); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	go srv.Serve(ln)
	defer srv.Close()

	got, err := Fetch(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("fetched %d relays", got.Len())
	}
	if _, ok := got.Lookup("served"); !ok {
		t.Error("served relay missing")
	}

	// Unknown requests get an error line, not a consensus.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("DELETE everything\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := conn.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "error") {
		t.Errorf("unknown request answered with %q", buf[:n])
	}
}

func TestFetchErrors(t *testing.T) {
	if _, err := Fetch("127.0.0.1:1"); err == nil {
		t.Error("fetch from dead address should fail")
	}
}

func TestLineRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nickRaw, addrRaw string, bwRaw float64, exit bool) bool {
		nick := sanitizeToken(nickRaw, "nick")
		addr := sanitizeToken(addrRaw, "addr")
		id, err := onion.NewIdentity(rng)
		if err != nil {
			return false
		}
		bw := math.Abs(bwRaw)
		if math.IsNaN(bw) || math.IsInf(bw, 0) || bw > 1e12 {
			bw = 100
		}
		// Line() prints bandwidth at one decimal; round to match.
		bw = math.Round(bw*10) / 10
		d := &Descriptor{Nickname: nick, Addr: addr, OnionKey: id.Public(), BandwidthKBps: bw, Exit: exit}
		got, err := ParseLine(d.Line())
		if err != nil {
			return false
		}
		// Bandwidth survives one trip through "%.1f" with only float
		// round-off; everything else must be exact.
		bwClose := math.Abs(got.BandwidthKBps-d.BandwidthKBps) <= 1e-9*(1+math.Abs(d.BandwidthKBps))
		return got.Nickname == d.Nickname && got.Addr == d.Addr &&
			got.OnionKey == d.OnionKey && got.Exit == d.Exit && bwClose
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitizeToken maps arbitrary strings to valid whitespace-free nonempty
// tokens, preserving enough variety for the property to be meaningful.
func sanitizeToken(s, fallback string) string {
	var b []rune
	for _, r := range s {
		if r > ' ' && r != 0x7f && !unicode.IsSpace(r) {
			b = append(b, r)
		}
	}
	if len(b) == 0 {
		return fallback
	}
	return string(b)
}
