package directory

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Server serves the consensus over a one-request text protocol: the client
// sends "GET consensus\n" and receives the encoded document. It stands in
// for Tor's directory port in the live-TCP deployment mode.
type Server struct {
	reg *Registry

	mu sync.Mutex
	ln net.Listener
}

// NewServer creates a directory server over reg.
func NewServer(reg *Registry) *Server { return &Server{reg: reg} }

// Serve accepts and answers requests on ln until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return
	}
	if strings.TrimSpace(line) != "GET consensus" {
		fmt.Fprintln(conn, "error unknown request")
		return
	}
	_ = s.reg.EncodeConsensus(conn)
}

// Fetch downloads and parses the consensus from a directory server at addr.
func Fetch(addr string) (*Registry, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("directory: fetch: %w", err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "GET consensus"); err != nil {
		return nil, fmt.Errorf("directory: fetch: %w", err)
	}
	return DecodeConsensus(conn)
}
