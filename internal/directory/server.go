package directory

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"ting/internal/stats"
	"ting/internal/telemetry"
)

// DefaultIOTimeout bounds every directory-protocol conversation, on both
// ends: a stalled peer cannot hang a Fetch, and a slow-loris client cannot
// pin a server connection open.
const DefaultIOTimeout = 10 * time.Second

// Server serves the consensus over a one-request text protocol. The client
// sends "GET consensus\n" and receives the encoded document, or
// "GET delta <epoch>\n" and receives the deltas recorded since that epoch
// (or a resync marker plus the full consensus when the bounded delta
// history no longer reaches back that far). It stands in for Tor's
// directory port in the live-TCP deployment mode.
type Server struct {
	reg *Registry
	// Timeout bounds each connection's whole conversation; zero means
	// DefaultIOTimeout.
	Timeout time.Duration

	mu  sync.Mutex
	ln  net.Listener
	ext map[string]ExtensionFunc
}

// ExtensionFunc handles one extension request. req is the full request
// line (leading verb included); br is the connection's buffered reader,
// positioned after the request line — multi-line requests must read their
// body from br, not conn, or they would lose bytes the server already
// buffered. The handler writes its reply to conn and returns; the server
// closes the connection.
type ExtensionFunc func(conn net.Conn, br *bufio.Reader, req string)

// NewServer creates a directory server over reg.
func NewServer(reg *Registry) *Server { return &Server{reg: reg} }

// Extend registers fn for request lines whose first word is verb, letting
// other subsystems ride the directory transport — one listener, one
// timeout discipline, one line-text protocol — instead of growing their
// own. The campaign coordinator registers its lease/heartbeat verbs here.
// Built-in requests ("GET …") always win over extensions. Registering a
// verb twice replaces the handler.
func (s *Server) Extend(verb string, fn ExtensionFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ext == nil {
		s.ext = make(map[string]ExtensionFunc)
	}
	s.ext[verb] = fn
}

// Serve accepts and answers requests on ln until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Close()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = DefaultIOTimeout
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	req := strings.TrimSpace(line)
	switch {
	case req == "GET consensus":
		_ = s.reg.EncodeConsensus(conn)
	case strings.HasPrefix(req, "GET delta "):
		since, err := strconv.ParseUint(strings.TrimPrefix(req, "GET delta "), 10, 64)
		if err != nil {
			fmt.Fprintln(conn, "error bad epoch")
			return
		}
		s.serveDeltas(conn, since)
	default:
		verb := req
		if i := strings.IndexByte(req, ' '); i >= 0 {
			verb = req[:i]
		}
		s.mu.Lock()
		fn := s.ext[verb]
		s.mu.Unlock()
		if fn != nil {
			fn(conn, br, req)
			return
		}
		fmt.Fprintln(conn, "error unknown request")
	}
}

// serveDeltas answers "GET delta <since>". The reply is either
//
//	deltas from=<since> to=<epoch> count=<k>
//	<epoch> join <relay line>
//	<epoch> leave <nickname>
//	<epoch> rotate <relay line>
//	end
//
// or "resync" followed by a full consensus document when the server's
// bounded history no longer covers the requested span.
func (s *Server) serveDeltas(conn net.Conn, since uint64) {
	deltas, ok := s.reg.DeltasSince(since)
	bw := bufio.NewWriter(conn)
	defer bw.Flush()
	if !ok {
		fmt.Fprintln(bw, "resync")
		bw.Flush()
		_ = s.reg.EncodeConsensus(conn)
		return
	}
	fmt.Fprintf(bw, "deltas from=%d to=%d count=%d\n", since, s.reg.Epoch(), len(deltas))
	for _, d := range deltas {
		switch d.Kind {
		case DeltaLeave:
			fmt.Fprintf(bw, "%d leave %s\n", d.Epoch, d.Name)
		default:
			fmt.Fprintf(bw, "%d %s %s\n", d.Epoch, d.Kind, d.Desc.Line())
		}
	}
	fmt.Fprintln(bw, "end")
}

// Fetch downloads and parses the consensus from a directory server at
// addr, bounded by DefaultIOTimeout.
func Fetch(addr string) (*Registry, error) {
	return FetchTimeout(addr, DefaultIOTimeout)
}

// FetchTimeout is Fetch with an explicit bound covering the dial and the
// whole conversation.
func FetchTimeout(addr string, timeout time.Duration) (*Registry, error) {
	conn, err := dialDirectory(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, "GET consensus"); err != nil {
		return nil, fmt.Errorf("directory: fetch: %w", err)
	}
	return DecodeConsensus(conn)
}

// FetchDeltas asks the directory server for every consensus change after
// epoch since. When the server still has that span, it returns the deltas
// (possibly empty) and a nil registry; when the server demands a resync it
// returns a nil delta slice and the full consensus instead. Bounded by
// DefaultIOTimeout.
func FetchDeltas(addr string, since uint64) ([]ConsensusDelta, *Registry, error) {
	conn, err := dialDirectory(addr, DefaultIOTimeout)
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET delta %d\n", since); err != nil {
		return nil, nil, fmt.Errorf("directory: fetch deltas: %w", err)
	}
	br := bufio.NewReader(conn)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("directory: fetch deltas: %w", err)
	}
	header = strings.TrimSpace(header)
	if header == "resync" {
		reg, err := DecodeConsensus(br)
		if err != nil {
			return nil, nil, err
		}
		return nil, reg, nil
	}
	if !strings.HasPrefix(header, "deltas ") {
		return nil, nil, fmt.Errorf("directory: bad delta header %q", header)
	}
	deltas := []ConsensusDelta{}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, nil, errors.New("directory: truncated delta stream")
			}
			return nil, nil, fmt.Errorf("directory: fetch deltas: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "end" {
			return deltas, nil, nil
		}
		d, err := parseDeltaLine(line)
		if err != nil {
			return nil, nil, err
		}
		deltas = append(deltas, d)
	}
}

func parseDeltaLine(line string) (ConsensusDelta, error) {
	f := strings.SplitN(line, " ", 3)
	if len(f) < 3 {
		return ConsensusDelta{}, fmt.Errorf("directory: malformed delta %q", line)
	}
	epoch, err := strconv.ParseUint(f[0], 10, 64)
	if err != nil {
		return ConsensusDelta{}, fmt.Errorf("directory: malformed delta %q", line)
	}
	switch f[1] {
	case "leave":
		return ConsensusDelta{Epoch: epoch, Kind: DeltaLeave, Name: f[2]}, nil
	case "join", "rotate":
		desc, err := ParseLine(f[2])
		if err != nil {
			return ConsensusDelta{}, err
		}
		kind := DeltaJoin
		if f[1] == "rotate" {
			kind = DeltaRotate
		}
		return ConsensusDelta{Epoch: epoch, Kind: kind, Name: desc.Nickname, Desc: desc}, nil
	}
	return ConsensusDelta{}, fmt.Errorf("directory: unknown delta kind in %q", line)
}

// Mirror keeps reg in step with the directory server at addr by polling
// for consensus deltas every interval and applying them, so reg's
// watchers fire as if they were subscribed to the origin registry. A
// server-demanded resync (the origin's bounded delta history no longer
// reaches the mirror's epoch) is folded in as synthesized
// join/leave/rotate deltas, so no consensus change is ever skipped
// silently. FetchDeltas failures back off exponentially with jitter (see
// MirrorTelemetry) instead of hammering a struggling origin at the fixed
// interval. Blocks until ctx is cancelled; run it in a goroutine.
func Mirror(ctx context.Context, addr string, reg *Registry, interval time.Duration) {
	MirrorTelemetry(ctx, addr, reg, interval, nil)
}

// mirrorBackoffCap bounds how far consecutive fetch failures stretch the
// poll interval: a long-dead origin is probed at interval×2^k, capped at
// max(32×interval, mirrorBackoffCap), so recovery is noticed within
// seconds, not after an unbounded exponential.
const mirrorBackoffCap = 30 * time.Second

// MirrorTelemetry is Mirror with a telemetry registry: each FetchDeltas
// failure increments directory.mirror.fetch_errors and doubles the next
// poll delay (jittered ±50% so a fleet of mirrors that lost the same
// origin does not re-find it in lockstep), up to a cap; the first success
// snaps the cadence back to interval. A nil registry counts into a no-op.
func MirrorTelemetry(ctx context.Context, addr string, reg *Registry, interval time.Duration, treg *telemetry.Registry) {
	if interval <= 0 {
		interval = time.Second
	}
	fetchErrors := treg.Counter("directory.mirror.fetch_errors")
	max := 32 * interval
	if max < mirrorBackoffCap {
		max = mirrorBackoffCap
	}
	backoff := stats.Backoff{Base: interval, Max: max, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	fails := 0
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		deltas, fresh, err := FetchDeltas(addr, reg.Epoch())
		if err != nil {
			fails++
			fetchErrors.Inc()
			timer.Reset(backoff.Delay(fails, rng))
			continue
		}
		fails = 0
		timer.Reset(interval)
		if fresh != nil {
			reg.resync(fresh)
			continue
		}
		for _, d := range deltas {
			_ = reg.ApplyDelta(d)
		}
	}
}

func dialDirectory(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		timeout = DefaultIOTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("directory: fetch: %w", err)
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	return conn, nil
}
