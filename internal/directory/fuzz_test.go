package directory

import (
	"strings"
	"testing"
)

func FuzzParseLine(f *testing.F) {
	f.Add("relay nick addr " + strings.Repeat("ab", 32) + " 100.0 exit")
	f.Add("relay nick addr " + strings.Repeat("cd", 32) + " 0.0 noexit")
	f.Add("")
	f.Add("relay")
	f.Fuzz(func(t *testing.T, line string) {
		d, err := ParseLine(line)
		if err != nil {
			return
		}
		// Anything the parser accepts must validate and round-trip.
		if err := d.Validate(); err != nil {
			t.Fatalf("parsed descriptor fails validation: %v", err)
		}
		got, err := ParseLine(d.Line())
		if err != nil {
			t.Fatalf("canonical line does not re-parse: %v", err)
		}
		if got.Nickname != d.Nickname || got.Addr != d.Addr || got.OnionKey != d.OnionKey || got.Exit != d.Exit {
			t.Fatal("line round trip diverged")
		}
	})
}

func FuzzDecodeConsensus(f *testing.F) {
	f.Add("consensus relays=0\nend\n")
	f.Add("consensus relays=1\nrelay n a " + strings.Repeat("ab", 32) + " 1.0 exit\nend\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, doc string) {
		reg, err := DecodeConsensus(strings.NewReader(doc))
		if err != nil {
			return
		}
		// A decodable consensus re-encodes and re-decodes to the same size.
		var sb strings.Builder
		if err := reg.EncodeConsensus(&sb); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeConsensus(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("canonical consensus does not decode: %v", err)
		}
		if again.Len() != reg.Len() {
			t.Fatalf("relay count changed: %d → %d", reg.Len(), again.Len())
		}
	})
}
