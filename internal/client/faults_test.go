package client

import (
	"errors"
	"testing"
	"time"

	"ting/internal/directory"
	"ting/internal/faults"
)

// faultyClient is a test client whose dials pass through a fault plan; on a
// PipeNet, addresses already are relay names.
func faultyClient(t *testing.T, tn *testNet, plan *faults.Plan) *Client {
	t.Helper()
	c, err := New(Config{
		Dialer:  plan.WrapDialer(tn.pn, "client", nil),
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildCircuitRefusedByFaultPlan(t *testing.T) {
	tn := buildTestNet(t, 3)
	plan := faults.NewPlan(71)
	plan.SetLink("client", "r0", faults.LinkFaults{DialFailProb: 1})
	c := faultyClient(t, tn, plan)

	// Entry through the blocked relay fails at the fault layer.
	if _, err := c.BuildCircuit(tn.descs[:2]); !errors.Is(err, faults.ErrDialRefused) {
		t.Errorf("build over blocked entry = %v, want ErrDialRefused", err)
	}
	// Only the client→r0 edge is blocked: entering at r1 and extending to
	// r0 uses r1's own (healthy) dialer and works.
	circ, err := c.BuildCircuit([]*directory.Descriptor{tn.descs[1], tn.descs[0]})
	if err != nil {
		t.Fatalf("unblocked path failed: %v", err)
	}
	circ.Close()
}

func TestBuildCircuitToCrashedRelayFailsFast(t *testing.T) {
	tn := buildTestNet(t, 2)
	plan := faults.NewPlan(72)
	plan.Begin()
	plan.Crash("r0")
	c := faultyClient(t, tn, plan)

	start := time.Now()
	_, err := c.BuildCircuit(tn.descs)
	if !errors.Is(err, faults.ErrDialRefused) {
		t.Errorf("build to crashed relay = %v, want ErrDialRefused", err)
	}
	// The refusal happens at dial time, not after a protocol timeout.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("crashed-relay dial took %v, want immediate refusal", elapsed)
	}
}

// TestInjectedResetTearsDownCircuit sends traffic over a link scheduled to
// reset deterministically: the circuit must fail with an error rather than
// hang, proving mid-circuit link loss surfaces to the client.
func TestInjectedResetTearsDownCircuit(t *testing.T) {
	tn := buildTestNet(t, 2)
	plan := faults.NewPlan(73)
	// The client's entry link dies on its 6th cell: enough to let the
	// circuit build (CREATE + EXTEND) and a stream open, then fail mid-use.
	plan.SetLink("client", "r0", faults.LinkFaults{ResetAfter: 6})
	c := faultyClient(t, tn, plan)

	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	wrote := false
	for i := 0; i < 20; i++ {
		if _, err = st.Write([]byte("ping")); err != nil {
			break
		}
		wrote = true
		buf := make([]byte, 4)
		if _, err = st.Read(buf); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("stream survived 20 round trips over a link that resets on send 6")
	}
	if !wrote {
		t.Error("link reset before any traffic; ResetAfter budget miscounted")
	}
}
