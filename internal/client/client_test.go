package client

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"ting/internal/directory"
	"ting/internal/echo"
	"ting/internal/link"
	"ting/internal/onion"
	"ting/internal/relay"
)

// testNet is a miniature mintor overlay on a PipeNet: n relays (all
// exit-capable unless noted) plus an in-memory echo destination named
// "echo".
type testNet struct {
	pn     *link.PipeNet
	relays []*relay.Relay
	descs  []*directory.Descriptor
}

type memExitDialer struct{}

func (memExitDialer) DialStream(target string) (io.ReadWriteCloser, error) {
	if target != "echo" {
		return nil, fmt.Errorf("unknown target %q", target)
	}
	a, b := net.Pipe()
	go echo.Handle(b)
	return a, nil
}

func buildTestNet(t *testing.T, n int, opts ...func(i int, cfg *relay.Config)) *testNet {
	t.Helper()
	tn := &testNet{pn: link.NewPipeNet()}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		id, err := onion.NewIdentity(rand.New(rand.NewSource(int64(1000 + i))))
		if err != nil {
			t.Fatal(err)
		}
		ln, err := tn.pn.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := relay.Config{
			Nickname:    name,
			Addr:        name,
			Identity:    id,
			Listener:    ln,
			RelayDialer: tn.pn,
			ExitDialer:  memExitDialer{},
		}
		for _, o := range opts {
			o(i, &cfg)
		}
		r, err := relay.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		tn.relays = append(tn.relays, r)
		tn.descs = append(tn.descs, &directory.Descriptor{
			Nickname: name, Addr: name, OnionKey: id.Public(),
			BandwidthKBps: 100, Exit: cfg.ExitDialer != nil,
		})
	}
	t.Cleanup(func() {
		for _, r := range tn.relays {
			r.Close()
		}
	})
	return tn
}

func newTestClient(t *testing.T, tn *testNet) *Client {
	t.Helper()
	c, err := New(Config{Dialer: tn.pn, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildCircuitPolicies(t *testing.T) {
	tn := buildTestNet(t, 3)
	c := newTestClient(t, tn)
	if _, err := c.BuildCircuit(tn.descs[:1]); !errors.Is(err, ErrPathTooShort) {
		t.Errorf("1-hop build = %v, want ErrPathTooShort", err)
	}
	dup := []*directory.Descriptor{tn.descs[0], tn.descs[1], tn.descs[0]}
	if _, err := c.BuildCircuit(dup); !errors.Is(err, ErrRepeatedRelay) {
		t.Errorf("repeated relay build = %v, want ErrRepeatedRelay", err)
	}
	if _, err := c.BuildCircuit([]*directory.Descriptor{tn.descs[0], nil}); err == nil {
		t.Error("nil descriptor accepted")
	}
}

func TestTwoHopCircuitEcho(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if circ.Len() != 2 {
		t.Errorf("Len = %d", circ.Len())
	}
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ec := echo.NewClient(st)
	rtt, err := ec.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v", rtt)
	}
}

func TestFourHopCircuitEcho(t *testing.T) {
	// The Ting full-circuit shape: (w, x, y, z).
	tn := buildTestNet(t, 4)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ec := echo.NewClient(st)
	rtts, err := ec.ProbeN(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtts) != 20 {
		t.Fatalf("%d probes", len(rtts))
	}
}

func TestLargeTransfer(t *testing.T) {
	tn := buildTestNet(t, 3)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Multi-cell payload exercises fragmentation and reassembly.
	payload := make([]byte, 5000)
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(payload)
	if _, err := st.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("echoed payload corrupted")
	}
}

func TestExitPolicyRefusal(t *testing.T) {
	tn := buildTestNet(t, 2, func(i int, cfg *relay.Config) {
		cfg.ExitPolicy = func(target string) bool { return false }
	})
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.OpenStream("echo"); err == nil {
		t.Error("stream should be refused by exit policy")
	} else if !strings.Contains(err.Error(), "policy") {
		t.Errorf("error %v does not mention policy", err)
	}
}

func TestNonExitRelayRefusesBegin(t *testing.T) {
	tn := buildTestNet(t, 2, func(i int, cfg *relay.Config) {
		cfg.ExitDialer = nil
	})
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.OpenStream("echo"); err == nil {
		t.Error("non-exit relay accepted a stream")
	}
}

func TestUnknownTargetRefused(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.OpenStream("nonexistent"); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestExtendToSelfRefused(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	// Two descriptors with different nicknames but the same address: the
	// client's distinct-nickname check passes, so the relay-side
	// extend-to-self check must fire.
	clone := *tn.descs[0]
	clone.Nickname = "impostor"
	if _, err := c.BuildCircuit([]*directory.Descriptor{tn.descs[0], &clone}); err == nil {
		t.Error("extend to self accepted")
	}
}

func TestExtendToDeadRelay(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	ghost := *tn.descs[1]
	ghost.Nickname = "ghost"
	ghost.Addr = "no-such-listener"
	if _, err := c.BuildCircuit([]*directory.Descriptor{tn.descs[0], &ghost}); err == nil {
		t.Error("extend to dead relay accepted")
	}
}

func TestDialEntryFailure(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	bad := *tn.descs[0]
	bad.Addr = "nowhere"
	if _, err := c.BuildCircuit([]*directory.Descriptor{&bad, tn.descs[1]}); err == nil {
		t.Error("dial to dead entry accepted")
	}
}

func TestWrongOnionKeyFailsBuild(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	forged := *tn.descs[0]
	wrongID, _ := onion.NewIdentity(rand.New(rand.NewSource(4242)))
	forged.OnionKey = wrongID.Public()
	if _, err := c.BuildCircuit([]*directory.Descriptor{&forged, tn.descs[1]}); err == nil {
		t.Error("handshake against wrong onion key succeeded")
	}
}

func TestCircuitCloseEndsStreams(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	circ.Close()
	buf := make([]byte, 4)
	if _, err := st.Read(buf); err == nil {
		// A racing echo response may still deliver; a second read must
		// fail.
		if _, err2 := st.Read(buf); err2 == nil {
			t.Error("read on closed circuit's stream succeeded twice")
		}
	}
	if _, err := circ.OpenStream("echo"); err == nil {
		t.Error("OpenStream after Close succeeded")
	}
}

func TestStreamCloseThenWrite(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("x")); err == nil {
		t.Error("write on closed stream succeeded")
	}
}

func TestConcurrentStreams(t *testing.T) {
	tn := buildTestNet(t, 3)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()

	const nStreams = 4
	errs := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		go func(tag byte) {
			st, err := circ.OpenStream("echo")
			if err != nil {
				errs <- err
				return
			}
			defer st.Close()
			msg := bytes.Repeat([]byte{tag}, 100)
			if _, err := st.Write(msg); err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(st, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("stream %d corrupted", tag)
				return
			}
			errs <- nil
		}(byte(i + 1))
	}
	for i := 0; i < nStreams; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestMultipleCircuitsSameClient(t *testing.T) {
	tn := buildTestNet(t, 4)
	c := newTestClient(t, tn)
	c1, err := c.BuildCircuit(tn.descs[:2])
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := c.BuildCircuit(tn.descs[2:])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, circ := range []*Circuit{c1, c2} {
		st, err := circ.OpenStream("echo")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := echo.NewClient(st).Probe(); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
}

func TestForwardDelayIsApplied(t *testing.T) {
	const fd = 10 * time.Millisecond
	tn := buildTestNet(t, 2, func(i int, cfg *relay.Config) {
		cfg.ForwardDelay = func() time.Duration { return fd }
	})
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rtt, err := echo.NewClient(st).Probe()
	if err != nil {
		t.Fatal(err)
	}
	// Round trip crosses each of the 2 relays twice: ≥ 4 forwarding
	// delays (BEGIN/CONNECTED already consumed some, but DATA pays its
	// own).
	if rtt < 4*fd {
		t.Errorf("rtt %v < 4 × forward delay %v", rtt, fd)
	}
}

func TestRelayStats(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := echo.NewClient(st).Probe(); err != nil {
		t.Fatal(err)
	}
	circuits, cells, _ := tn.relays[0].Stats()
	if circuits == 0 {
		t.Error("entry relay reports no circuits")
	}
	if cells == 0 {
		t.Error("entry relay reports no relayed cells")
	}
	_, _, streams := tn.relays[1].Stats()
	if streams == 0 {
		t.Error("exit relay reports no streams")
	}
}

func TestPathReturnsCopy(t *testing.T) {
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	p := circ.Path()
	p[0] = nil
	if circ.Path()[0] == nil {
		t.Error("Path returned aliased slice")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing dialer accepted")
	}
}
