package client

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"ting/internal/cell"
	"ting/internal/directory"
	"ting/internal/link"
	"ting/internal/onion"
)

// Robustness against a hostile or broken first hop: the client must fail
// cleanly (never hang, never accept forged crypto).

// scriptedRelay runs fn for each accepted link on addr.
func scriptedRelay(t *testing.T, pn *link.PipeNet, addr string, fn func(lk link.Link)) *directory.Descriptor {
	t.Helper()
	ln, err := pn.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			lk, err := ln.Accept()
			if err != nil {
				return
			}
			go fn(lk)
		}
	}()
	id, err := onion.NewIdentity(rand.New(rand.NewSource(4040)))
	if err != nil {
		t.Fatal(err)
	}
	return &directory.Descriptor{
		Nickname: addr, Addr: addr, OnionKey: id.Public(), BandwidthKBps: 1, Exit: true,
	}
}

func hostileClient(t *testing.T, pn *link.PipeNet) *Client {
	t.Helper()
	c, err := New(Config{Dialer: pn, Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func twoHopPath(t *testing.T, pn *link.PipeNet, first *directory.Descriptor) []*directory.Descriptor {
	t.Helper()
	second := *first
	second.Nickname = "second"
	second.Addr = "second-unused"
	return []*directory.Descriptor{first, &second}
}

func TestClientTimesOutOnSilentRelay(t *testing.T) {
	pn := link.NewPipeNet()
	d := scriptedRelay(t, pn, "silent", func(lk link.Link) {
		// Accept and say nothing.
		for {
			if _, err := recvCell(lk); err != nil {
				return
			}
		}
	})
	c := hostileClient(t, pn)
	start := time.Now()
	_, err := c.BuildCircuit(twoHopPath(t, pn, d))
	if err == nil {
		t.Fatal("build against silent relay succeeded")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Errorf("error %v does not mention timeout", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("timeout took far too long")
	}
}

func TestClientRejectsForgedCreated(t *testing.T) {
	pn := link.NewPipeNet()
	d := scriptedRelay(t, pn, "forger", func(lk link.Link) {
		c, err := recvCell(lk)
		if err != nil {
			return
		}
		// Answer with a CREATED full of garbage: the ntor auth check must
		// reject it.
		var reply cell.Cell
		reply.Circ = c.Circ
		reply.Cmd = cell.Created
		for i := 0; i < onion.ReplyLen; i++ {
			reply.Payload[i] = byte(i*7 + 1)
		}
		_ = sendCell(lk, reply)
	})
	c := hostileClient(t, pn)
	if _, err := c.BuildCircuit(twoHopPath(t, pn, d)); err == nil {
		t.Fatal("forged CREATED accepted")
	}
}

func TestClientSurvivesJunkRelayCells(t *testing.T) {
	pn := link.NewPipeNet()
	d := scriptedRelay(t, pn, "junker", func(lk link.Link) {
		c, err := recvCell(lk)
		if err != nil {
			return
		}
		// Spray junk RELAY cells before any CREATED: undecryptable cells
		// on an un-built circuit must not crash the client.
		var junk cell.Cell
		junk.Circ = c.Circ
		junk.Cmd = cell.Relay
		for i := 0; i < 5; i++ {
			junk.Payload[0] = byte(i)
			if err := sendCell(lk, junk); err != nil {
				return
			}
		}
	})
	c := hostileClient(t, pn)
	if _, err := c.BuildCircuit(twoHopPath(t, pn, d)); err == nil {
		t.Fatal("junk-spraying relay produced a circuit")
	}
}

func TestClientHandlesImmediateDestroy(t *testing.T) {
	pn := link.NewPipeNet()
	d := scriptedRelay(t, pn, "destroyer", func(lk link.Link) {
		c, err := recvCell(lk)
		if err != nil {
			return
		}
		_ = sendCell(lk, cell.Cell{Circ: c.Circ, Cmd: cell.Destroy})
	})
	c := hostileClient(t, pn)
	_, err := c.BuildCircuit(twoHopPath(t, pn, d))
	if err == nil {
		t.Fatal("destroyed circuit returned as built")
	}
	if !strings.Contains(err.Error(), "destroy") && !strings.Contains(err.Error(), "closed") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestClientHandlesConnDropMidBuild(t *testing.T) {
	pn := link.NewPipeNet()
	d := scriptedRelay(t, pn, "dropper", func(lk link.Link) {
		if _, err := recvCell(lk); err != nil {
			return
		}
		lk.Close()
	})
	c := hostileClient(t, pn)
	if _, err := c.BuildCircuit(twoHopPath(t, pn, d)); err == nil {
		t.Fatal("dropped connection produced a circuit")
	}
}

func TestClientIgnoresWrongCircuitID(t *testing.T) {
	pn := link.NewPipeNet()
	d := scriptedRelay(t, pn, "misdirect", func(lk link.Link) {
		c, err := recvCell(lk)
		if err != nil {
			return
		}
		// A CREATED for a different circuit must be ignored; the build
		// then times out rather than mis-binding crypto state.
		var reply cell.Cell
		reply.Circ = c.Circ + 1
		reply.Cmd = cell.Created
		_ = sendCell(lk, reply)
	})
	c := hostileClient(t, pn)
	_, err := c.BuildCircuit(twoHopPath(t, pn, d))
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Errorf("mis-addressed CREATED not ignored: %v", err)
	}
}
