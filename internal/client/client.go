// Package client implements the mintor onion proxy: it builds circuits
// through explicitly chosen relays and attaches byte streams to them.
//
// It enforces the two local-client policies the paper works within (§3.1):
// one-hop circuits are disallowed, and a relay cannot appear on a circuit
// more than once. Ting never needs to violate these — its circuits are
// (w, x), (w, y), and (w, x, y, z) — but it must function under them, which
// is exactly why the measurement host runs two local relays.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ting/internal/cell"
	"ting/internal/directory"
	"ting/internal/link"
	"ting/internal/telemetry"
)

// BuildAutoCircuit builds a circuit of the given length through relays
// chosen by default Tor policy: bandwidth-weighted picks without
// replacement, exit-capable relay last (§5.2: "a Tor client selects these
// relays at random according to the bandwidth capacity of each router").
func (c *Client) BuildAutoCircuit(reg *directory.Registry, length int) (*Circuit, error) {
	if reg == nil {
		return nil, errors.New("client: nil registry")
	}
	c.rng.Lock()
	path, err := directory.PickPath(reg.Consensus(), length, c.rng.Rand)
	c.rng.Unlock()
	if err != nil {
		return nil, err
	}
	return c.BuildCircuit(path)
}

// Config configures an onion proxy.
type Config struct {
	// Dialer opens links to entry relays. Required.
	Dialer link.Dialer
	// Timeout bounds every protocol wait (circuit build steps, stream
	// opens). Default 15s.
	Timeout time.Duration
	// StreamWindow is the per-stream flow-control window in DATA cells for
	// client→destination traffic (Tor's stream window is 500). Default 500.
	StreamWindow int
	// SendmeEvery is how many delivered DATA cells earn one SENDME
	// acknowledgement to the exit. Default 50.
	SendmeEvery int
	// Logf, if non-nil, receives debug logs.
	Logf func(format string, args ...any)
	// Telemetry, if non-nil, receives proxy counters (client.handshakes,
	// client.circuits_built, ...). Nil disables instrumentation.
	Telemetry *telemetry.Registry
}

// Client is an onion proxy. It is safe for concurrent use; each circuit
// gets its own link to its entry relay.
type Client struct {
	cfg Config
	rng struct {
		sync.Mutex
		*rand.Rand
	}
	tm clientMetrics
}

// clientMetrics holds the proxy's telemetry counters, resolved once at
// construction.
type clientMetrics struct {
	circuitsBuilt  *telemetry.Counter
	buildFailures  *telemetry.Counter
	handshakes     *telemetry.Counter
	extends        *telemetry.Counter
	streamsOpened  *telemetry.Counter
	streamFailures *telemetry.Counter
}

// New creates a Client.
func New(cfg Config) (*Client, error) {
	if cfg.Dialer == nil {
		return nil, errors.New("client: config missing Dialer")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 15 * time.Second
	}
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = 500
	}
	if cfg.SendmeEvery <= 0 {
		cfg.SendmeEvery = 50
	}
	if cfg.SendmeEvery > cfg.StreamWindow {
		return nil, errors.New("client: SendmeEvery larger than StreamWindow")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Client{cfg: cfg}
	c.rng.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	c.tm = clientMetrics{
		circuitsBuilt:  cfg.Telemetry.Counter("client.circuits_built"),
		buildFailures:  cfg.Telemetry.Counter("client.circuit_build_failures"),
		handshakes:     cfg.Telemetry.Counter("client.handshakes"),
		extends:        cfg.Telemetry.Counter("client.extends"),
		streamsOpened:  cfg.Telemetry.Counter("client.streams_opened"),
		streamFailures: cfg.Telemetry.Counter("client.stream_failures"),
	}
	return c, nil
}

// ErrPathTooShort is returned for paths of fewer than two hops: the local
// client refuses one-hop circuits, as Tor does.
var ErrPathTooShort = errors.New("client: one-hop circuits are disallowed")

// ErrRepeatedRelay is returned when a relay appears twice on a path.
var ErrRepeatedRelay = errors.New("client: a relay cannot appear on a circuit more than once")

// BuildCircuit constructs a circuit through exactly the given relays, in
// order, performing one handshake per hop. The last relay is the exit.
func (c *Client) BuildCircuit(path []*directory.Descriptor) (*Circuit, error) {
	if len(path) < 2 {
		return nil, ErrPathTooShort
	}
	seen := make(map[string]bool, len(path))
	for _, d := range path {
		if d == nil {
			return nil, errors.New("client: nil descriptor in path")
		}
		if seen[d.Nickname] {
			return nil, fmt.Errorf("%w: %s", ErrRepeatedRelay, d.Nickname)
		}
		seen[d.Nickname] = true
	}

	lk, err := c.cfg.Dialer.Dial(path[0].Addr)
	if err != nil {
		c.tm.buildFailures.Inc()
		return nil, fmt.Errorf("client: dial entry %s: %w", path[0].Nickname, err)
	}
	circ := newCircuit(c, lk, c.newCircID(), path)
	if err := circ.build(); err != nil {
		circ.Close()
		c.tm.buildFailures.Inc()
		return nil, err
	}
	c.tm.circuitsBuilt.Inc()
	return circ, nil
}

func (c *Client) newCircID() cell.CircID {
	c.rng.Lock()
	defer c.rng.Unlock()
	for {
		if id := cell.CircID(c.rng.Uint32()); id != 0 {
			return id
		}
	}
}
