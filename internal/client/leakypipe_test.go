package client

import (
	"testing"
	"time"

	"ting/internal/echo"
	"ting/internal/relay"
)

// Tests for Tor's leaky-pipe topology: streams at arbitrary hops and
// post-build circuit extension.

func TestStreamAtMiddleHop(t *testing.T) {
	tn := buildTestNet(t, 3)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()

	// Exit from hop 0 (the entry) and hop 1 (the middle), not just the end.
	for hop := 0; hop < 3; hop++ {
		st, err := circ.OpenStreamAt(hop, "echo")
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if _, err := echo.NewClient(st).Probe(); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		st.Close()
	}
	if _, err := circ.OpenStreamAt(3, "echo"); err == nil {
		t.Error("out-of-range hop accepted")
	}
	if _, err := circ.OpenStreamAt(-1, "echo"); err == nil {
		t.Error("negative hop accepted")
	}
}

func TestExtendEstablishedCircuit(t *testing.T) {
	tn := buildTestNet(t, 4)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs[:2])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if circ.Len() != 2 {
		t.Fatalf("built %d hops", circ.Len())
	}

	// A stream opened before extension…
	early, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer early.Close()

	// …must keep working after the circuit grows by two hops.
	if err := circ.Extend(tn.descs[2]); err != nil {
		t.Fatal(err)
	}
	if err := circ.Extend(tn.descs[3]); err != nil {
		t.Fatal(err)
	}
	if circ.Len() != 4 {
		t.Fatalf("after extension: %d hops", circ.Len())
	}
	if _, err := echo.NewClient(early).Probe(); err != nil {
		t.Fatalf("pre-extension stream broken: %v", err)
	}

	// New streams exit from the new last hop.
	late, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if _, err := echo.NewClient(late).Probe(); err != nil {
		t.Fatal(err)
	}
	if late.hop != 3 {
		t.Errorf("new stream attached at hop %d, want 3", late.hop)
	}
}

func TestExtendValidation(t *testing.T) {
	tn := buildTestNet(t, 3)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs[:2])
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if err := circ.Extend(nil); err == nil {
		t.Error("nil descriptor accepted")
	}
	if err := circ.Extend(tn.descs[0]); err == nil {
		t.Error("repeated relay accepted by Extend")
	}
	ghost := *tn.descs[2]
	ghost.Nickname = "ghost"
	ghost.Addr = "nowhere"
	if err := circ.Extend(&ghost); err == nil {
		t.Error("extend to dead relay accepted")
	}
	// The circuit survives a failed extension attempt.
	if err := circ.Extend(tn.descs[2]); err != nil {
		t.Fatalf("extend after failed extend: %v", err)
	}
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := echo.NewClient(st).Probe(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendClosedCircuit(t *testing.T) {
	tn := buildTestNet(t, 3)
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs[:2])
	if err != nil {
		t.Fatal(err)
	}
	circ.Close()
	time.Sleep(10 * time.Millisecond)
	if err := circ.Extend(tn.descs[2]); err == nil {
		t.Error("extend on closed circuit accepted")
	}
}

func TestLatencyMeasurementAtEachHop(t *testing.T) {
	// The leaky pipe gives Ting a second way to isolate per-hop RTTs: a
	// stream at hop i measures the path up to relay i.
	const fd = 8 * time.Millisecond
	tn := buildTestNet(t, 3, func(i int, cfg *relay.Config) {
		cfg.ForwardDelay = func() time.Duration { return fd }
	})
	c := newTestClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()

	var rtts [3]time.Duration
	for hop := 0; hop < 3; hop++ {
		st, err := circ.OpenStreamAt(hop, "echo")
		if err != nil {
			t.Fatal(err)
		}
		min, err := echo.NewClient(st).MinRTT(3)
		if err != nil {
			t.Fatal(err)
		}
		st.Close()
		rtts[hop] = min
	}
	// Deeper hops pay strictly more forwarding delay.
	if !(rtts[0] < rtts[1] && rtts[1] < rtts[2]) {
		t.Errorf("per-hop RTTs not increasing: %v", rtts)
	}
}
