package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ting/internal/cell"
	"ting/internal/directory"
	"ting/internal/link"
	"ting/internal/onion"
)

// Circuit is an established client circuit.
type Circuit struct {
	c    *Client
	lk   link.Link
	id   cell.CircID
	path []*directory.Descriptor

	crypto onion.CircuitCrypto
	// cryptoMu guards every use of crypto: forward crypt+send (keeping
	// each hop's CTR keystream and digest in cell order), backward
	// decryption, and hop addition during Extend.
	cryptoMu sync.Mutex

	created chan []byte         // CREATED payload during build
	ctrl    chan cell.RelayCell // stream-0 relay cells (EXTENDED / END)

	mu        sync.Mutex
	streams   map[cell.StreamID]*Stream
	nextSID   cell.StreamID
	destroyed bool
	err       error

	closeOnce sync.Once
	closed    chan struct{}
}

func newCircuit(c *Client, lk link.Link, id cell.CircID, path []*directory.Descriptor) *Circuit {
	circ := &Circuit{
		c:       c,
		lk:      lk,
		id:      id,
		path:    append([]*directory.Descriptor(nil), path...),
		created: make(chan []byte, 1),
		ctrl:    make(chan cell.RelayCell, 16),
		streams: make(map[cell.StreamID]*Stream),
		nextSID: 1,
		closed:  make(chan struct{}),
	}
	go circ.readLoop()
	return circ
}

// Path returns the circuit's relay path.
func (circ *Circuit) Path() []*directory.Descriptor {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return append([]*directory.Descriptor(nil), circ.path...)
}

func (circ *Circuit) pathSnapshot() []*directory.Descriptor {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return circ.path
}

// Len returns the number of hops.
func (circ *Circuit) Len() int {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	return len(circ.path)
}

// Extend adds one more hop to an established circuit, performing the
// handshake through the current last hop. Existing streams keep flowing at
// their original hops (leaky pipe). The new relay must not already be on
// the circuit.
func (circ *Circuit) Extend(d *directory.Descriptor) error {
	if d == nil {
		return errors.New("client: nil descriptor")
	}
	circ.mu.Lock()
	if circ.destroyed {
		circ.mu.Unlock()
		return circ.closeErr()
	}
	for _, h := range circ.path {
		if h.Nickname == d.Nickname {
			circ.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrRepeatedRelay, d.Nickname)
		}
	}
	last := len(circ.path) - 1
	circ.mu.Unlock()

	hs, err := onion.StartHandshake(d.OnionKey, nil)
	if err != nil {
		return err
	}
	body, err := cell.EncodeExtend(d.Addr, hs.Onionskin())
	if err != nil {
		return err
	}
	if err := circ.sendForward(last, cell.RelayCell{Cmd: cell.RelayExtend, Data: body}); err != nil {
		return fmt.Errorf("client: extend to %s: %w", d.Nickname, err)
	}
	rc, err := circ.waitCtrl()
	if err != nil {
		return fmt.Errorf("client: extend to %s: %w", d.Nickname, err)
	}
	switch rc.Cmd {
	case cell.RelayExtended:
		hop, err := hs.Complete(rc.Data)
		if err != nil {
			return fmt.Errorf("client: extend to %s: %w", d.Nickname, err)
		}
		circ.c.tm.handshakes.Inc()
		circ.c.tm.extends.Inc()
		circ.cryptoMu.Lock()
		circ.crypto.AddHop(hop)
		circ.cryptoMu.Unlock()
		circ.mu.Lock()
		circ.path = append(circ.path, d)
		circ.mu.Unlock()
		return nil
	case cell.RelayEnd:
		return fmt.Errorf("client: extend to %s refused: %s", d.Nickname, rc.Data)
	default:
		return fmt.Errorf("client: extend to %s: unexpected %s", d.Nickname, rc.Cmd)
	}
}

// build performs the CREATE + EXTEND sequence for every hop.
func (circ *Circuit) build() error {
	// First hop: CREATE/CREATED directly on the link.
	hs, err := onion.StartHandshake(circ.path[0].OnionKey, nil)
	if err != nil {
		return err
	}
	var create cell.Cell
	create.Circ = circ.id
	create.Cmd = cell.Create
	copy(create.Payload[:], hs.Onionskin())
	if err := circ.lk.Send(&create); err != nil {
		return fmt.Errorf("client: send CREATE: %w", err)
	}
	reply, err := circ.waitCreated()
	if err != nil {
		return fmt.Errorf("client: hop 1 (%s): %w", circ.path[0].Nickname, err)
	}
	hop, err := hs.Complete(reply)
	if err != nil {
		return fmt.Errorf("client: hop 1 (%s): %w", circ.path[0].Nickname, err)
	}
	circ.c.tm.handshakes.Inc()
	circ.cryptoMu.Lock()
	circ.crypto.AddHop(hop)
	circ.cryptoMu.Unlock()

	// Remaining hops: RELAY_EXTEND through the current last hop.
	for i := 1; i < len(circ.path); i++ {
		d := circ.path[i]
		hs, err := onion.StartHandshake(d.OnionKey, nil)
		if err != nil {
			return err
		}
		body, err := cell.EncodeExtend(d.Addr, hs.Onionskin())
		if err != nil {
			return err
		}
		if err := circ.sendForward(i-1, cell.RelayCell{Cmd: cell.RelayExtend, Data: body}); err != nil {
			return fmt.Errorf("client: extend to %s: %w", d.Nickname, err)
		}
		rc, err := circ.waitCtrl()
		if err != nil {
			return fmt.Errorf("client: extend to %s: %w", d.Nickname, err)
		}
		switch rc.Cmd {
		case cell.RelayExtended:
			hop, err := hs.Complete(rc.Data)
			if err != nil {
				return fmt.Errorf("client: extend to %s: %w", d.Nickname, err)
			}
			circ.c.tm.handshakes.Inc()
			circ.c.tm.extends.Inc()
			circ.cryptoMu.Lock()
			circ.crypto.AddHop(hop)
			circ.cryptoMu.Unlock()
		case cell.RelayEnd:
			return fmt.Errorf("client: extend to %s refused: %s", d.Nickname, rc.Data)
		default:
			return fmt.Errorf("client: extend to %s: unexpected %s", d.Nickname, rc.Cmd)
		}
	}
	return nil
}

func (circ *Circuit) waitCreated() ([]byte, error) {
	select {
	case reply := <-circ.created:
		return reply, nil
	case <-circ.closed:
		return nil, circ.closeErr()
	case <-time.After(circ.c.cfg.Timeout):
		return nil, errors.New("timeout waiting for CREATED")
	}
}

func (circ *Circuit) waitCtrl() (cell.RelayCell, error) {
	select {
	case rc := <-circ.ctrl:
		return rc, nil
	case <-circ.closed:
		return cell.RelayCell{}, circ.closeErr()
	case <-time.After(circ.c.cfg.Timeout):
		return cell.RelayCell{}, errors.New("timeout waiting for circuit reply")
	}
}

func (circ *Circuit) closeErr() error {
	circ.mu.Lock()
	defer circ.mu.Unlock()
	if circ.err != nil {
		return circ.err
	}
	return errors.New("client: circuit closed")
}

// sendForward seals rc for hop index hop and transmits it.
func (circ *Circuit) sendForward(hop int, rc cell.RelayCell) error {
	p, err := rc.MarshalPayload()
	if err != nil {
		return err
	}
	circ.cryptoMu.Lock()
	defer circ.cryptoMu.Unlock()
	if err := circ.crypto.EncryptForward(hop, &p); err != nil {
		return err
	}
	out := cell.Cell{Circ: circ.id, Cmd: cell.Relay, Payload: p}
	return circ.lk.Send(&out)
}

// readLoop dispatches inbound cells until the link dies or the circuit is
// closed. One cell is reused across iterations; handlers copy what they
// keep.
func (circ *Circuit) readLoop() {
	var c cell.Cell
	for {
		err := circ.lk.Recv(&c)
		if err != nil {
			circ.fail(fmt.Errorf("client: link lost: %w", err))
			return
		}
		if c.Circ != circ.id {
			circ.c.cfg.Logf("client: cell for unknown circ %d", c.Circ)
			continue
		}
		switch c.Cmd {
		case cell.Created:
			select {
			case circ.created <- append([]byte(nil), c.Payload[:onion.ReplyLen]...):
			default:
			}
		case cell.Relay:
			circ.handleRelay(&c)
		case cell.Destroy:
			circ.fail(errors.New("client: circuit destroyed by relay"))
			return
		case cell.Padding:
		default:
			circ.c.cfg.Logf("client: unexpected %s", c.Cmd)
		}
	}
}

func (circ *Circuit) handleRelay(c *cell.Cell) {
	circ.cryptoMu.Lock()
	hop, err := circ.crypto.DecryptBackward(&c.Payload)
	circ.cryptoMu.Unlock()
	if err != nil {
		circ.c.cfg.Logf("client: %v", err)
		circ.fail(errors.New("client: undecryptable relay cell"))
		return
	}
	rc, err := cell.UnmarshalPayload(&c.Payload)
	if err != nil {
		circ.c.cfg.Logf("client: bad relay cell from hop %d: %v", hop, err)
		return
	}
	if rc.Stream == 0 {
		select {
		case circ.ctrl <- rc:
		default:
			circ.c.cfg.Logf("client: dropping control cell %s", rc.Cmd)
		}
		return
	}
	circ.mu.Lock()
	st := circ.streams[rc.Stream]
	circ.mu.Unlock()
	if st == nil {
		circ.c.cfg.Logf("client: cell for unknown stream %d", rc.Stream)
		return
	}
	st.deliver(rc)
}

// OpenStream asks the last hop to connect to target and returns the
// attached stream.
func (circ *Circuit) OpenStream(target string) (*Stream, error) {
	return circ.OpenStreamAt(len(circ.pathSnapshot())-1, target)
}

// OpenStreamAt opens a stream exiting from the given hop index — Tor's
// "leaky pipe" topology, where traffic may leave the circuit before its
// end. The hop's relay must permit exiting to target.
func (circ *Circuit) OpenStreamAt(hop int, target string) (*Stream, error) {
	circ.mu.Lock()
	if circ.destroyed {
		circ.mu.Unlock()
		return nil, circ.closeErr()
	}
	if hop < 0 || hop >= len(circ.path) {
		circ.mu.Unlock()
		return nil, fmt.Errorf("client: hop %d out of range (circuit has %d)", hop, len(circ.path))
	}
	sid := circ.nextSID
	circ.nextSID++
	st := newStream(circ, sid, hop)
	circ.streams[sid] = st
	circ.mu.Unlock()

	if err := circ.sendForward(hop, cell.RelayCell{
		Cmd: cell.RelayBegin, Stream: sid, Data: []byte(target),
	}); err != nil {
		circ.dropStream(sid)
		circ.c.tm.streamFailures.Inc()
		return nil, err
	}
	select {
	case <-st.connected:
		circ.c.tm.streamsOpened.Inc()
		return st, nil
	case <-st.closedCh:
		circ.dropStream(sid)
		circ.c.tm.streamFailures.Inc()
		return nil, fmt.Errorf("client: stream refused: %s", st.endReason())
	case <-circ.closed:
		circ.c.tm.streamFailures.Inc()
		return nil, circ.closeErr()
	case <-time.After(circ.c.cfg.Timeout):
		circ.dropStream(sid)
		circ.c.tm.streamFailures.Inc()
		return nil, errors.New("client: timeout opening stream")
	}
}

func (circ *Circuit) dropStream(sid cell.StreamID) {
	circ.mu.Lock()
	delete(circ.streams, sid)
	circ.mu.Unlock()
}

// fail tears the circuit down because of err.
func (circ *Circuit) fail(err error) {
	circ.mu.Lock()
	if circ.err == nil {
		circ.err = err
	}
	circ.mu.Unlock()
	circ.shutdown(false)
}

// Close tears the circuit down, notifying the entry relay.
func (circ *Circuit) Close() error {
	circ.shutdown(true)
	return nil
}

func (circ *Circuit) shutdown(notify bool) {
	circ.closeOnce.Do(func() {
		circ.mu.Lock()
		circ.destroyed = true
		streams := circ.streams
		circ.streams = make(map[cell.StreamID]*Stream)
		circ.mu.Unlock()
		for _, st := range streams {
			st.closeLocal()
		}
		if notify {
			dc := cell.Cell{Circ: circ.id, Cmd: cell.Destroy}
			_ = circ.lk.Send(&dc)
		}
		close(circ.closed)
		circ.lk.Close()
	})
}
