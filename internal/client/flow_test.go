package client

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ting/internal/cell"
	"ting/internal/directory"
	"ting/internal/echo"
	"ting/internal/link"
	"ting/internal/onion"
	"ting/internal/relay"
)

// Tests for the two Tor behaviours added on top of the basic stack:
// connection multiplexing between relay pairs and SENDME stream flow
// control.

func smallWindow(i int, cfg *relay.Config) {
	cfg.StreamWindow = 8
	cfg.SendmeEvery = 2
}

func newSmallWindowClient(t *testing.T, tn *testNet) *Client {
	t.Helper()
	c, err := New(Config{
		Dialer:       tn.pn,
		Timeout:      5 * time.Second,
		StreamWindow: 8,
		SendmeEvery:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFlowControlLargeTransfer(t *testing.T) {
	// A transfer of many times the window only completes if SENDMEs
	// circulate in both directions.
	tn := buildTestNet(t, 3, smallWindow)
	c := newSmallWindowClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// 60 cells' worth of data against an 8-cell window.
	payload := make([]byte, 60*cell.RelayDataLen)
	rand.New(rand.NewSource(1)).Read(payload)

	done := make(chan error, 1)
	go func() {
		_, err := st.Write(payload)
		done <- err
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted across flow-controlled transfer")
	}
}

// stallConn is an exit-side connection whose writes block until released.
type stallConn struct {
	release chan struct{}
	closed  chan struct{}
	once    sync.Once
}

func (s *stallConn) Read(p []byte) (int, error) {
	<-s.closed
	return 0, io.EOF
}

func (s *stallConn) Write(p []byte) (int, error) {
	select {
	case <-s.release:
		return len(p), nil
	case <-s.closed:
		return 0, io.ErrClosedPipe
	}
}

func (s *stallConn) Close() error {
	s.once.Do(func() { close(s.closed) })
	return nil
}

type stallDialer struct {
	mu    sync.Mutex
	conns []*stallConn
}

func (d *stallDialer) DialStream(target string) (io.ReadWriteCloser, error) {
	c := &stallConn{release: make(chan struct{}), closed: make(chan struct{})}
	d.mu.Lock()
	d.conns = append(d.conns, c)
	d.mu.Unlock()
	return c, nil
}

func (d *stallDialer) releaseAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.conns {
		close(c.release)
	}
	d.conns = nil
}

func TestFlowControlWindowBlocksWriter(t *testing.T) {
	// When the destination stops consuming, the client's Write must stall
	// after at most one window of cells — the bound that keeps a stuck
	// stream from flooding the circuit.
	stall := &stallDialer{}
	tn := buildTestNet(t, 2, smallWindow, func(i int, cfg *relay.Config) {
		cfg.ExitDialer = stall
	})
	c := newSmallWindowClient(t, tn)
	circ, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// 20 cells against an 8-cell window and a stalled consumer.
	payload := make([]byte, 20*cell.RelayDataLen)
	done := make(chan int, 1)
	go func() {
		n, _ := st.Write(payload)
		done <- n
	}()
	select {
	case n := <-done:
		t.Fatalf("write of %d cells completed (%d bytes) despite stalled exit", 20, n)
	case <-time.After(300 * time.Millisecond):
		// blocked, as required
	}
	stall.releaseAll()
	select {
	case n := <-done:
		if n != len(payload) {
			t.Errorf("wrote %d of %d bytes after release", n, len(payload))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write did not resume after exit recovered")
	}
}

func TestOutConnMultiplexing(t *testing.T) {
	// Many circuits through the same relay pair must share one onward
	// connection at the entry relay.
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	var circs []*Circuit
	for i := 0; i < 5; i++ {
		circ, err := c.BuildCircuit(tn.descs)
		if err != nil {
			t.Fatal(err)
		}
		circs = append(circs, circ)
	}
	defer func() {
		for _, circ := range circs {
			circ.Close()
		}
	}()
	if n := tn.relays[0].OutConnCount(); n != 1 {
		t.Errorf("entry relay has %d onward connections for 5 circuits, want 1", n)
	}
	// Every circuit still works.
	for i, circ := range circs {
		st, err := circ.OpenStream("echo")
		if err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
		if _, err := echo.NewClient(st).Probe(); err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
		st.Close()
	}
}

func TestOutConnSurvivesCircuitClose(t *testing.T) {
	// Destroying one circuit must not kill its siblings on the shared
	// connection.
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	c1, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.BuildCircuit(tn.descs)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	c1.Close()
	time.Sleep(50 * time.Millisecond)

	st, err := c2.OpenStream("echo")
	if err != nil {
		t.Fatalf("sibling circuit broken after destroy: %v", err)
	}
	defer st.Close()
	if _, err := echo.NewClient(st).Probe(); err != nil {
		t.Fatal(err)
	}
	if n := tn.relays[0].OutConnCount(); n != 1 {
		t.Errorf("onward connection count = %d after sibling close, want 1", n)
	}
}

func TestOutConnThreeHopSharing(t *testing.T) {
	// A 3-hop network where both hops multiplex: r0→r1 and r1→r2.
	tn := buildTestNet(t, 3)
	c := newTestClient(t, tn)
	var circs []*Circuit
	for i := 0; i < 3; i++ {
		circ, err := c.BuildCircuit(tn.descs)
		if err != nil {
			t.Fatal(err)
		}
		circs = append(circs, circ)
		st, err := circ.OpenStream("echo")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := echo.NewClient(st).Probe(); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	defer func() {
		for _, circ := range circs {
			circ.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		if n := tn.relays[i].OutConnCount(); n != 1 {
			t.Errorf("relay %d has %d onward connections, want 1", i, n)
		}
	}
}

func TestConcurrentBuildsShareConn(t *testing.T) {
	// Racing circuit builds must not open duplicate onward connections.
	tn := buildTestNet(t, 2)
	c := newTestClient(t, tn)
	const n = 8
	errs := make(chan error, n)
	circs := make(chan *Circuit, n)
	for i := 0; i < n; i++ {
		go func() {
			circ, err := c.BuildCircuit(tn.descs)
			if err != nil {
				errs <- err
				return
			}
			circs <- circ
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(circs)
	for circ := range circs {
		defer circ.Close()
	}
	if got := tn.relays[0].OutConnCount(); got != 1 {
		t.Errorf("racing builds opened %d onward connections, want 1", got)
	}
}

func TestSendmeConfigValidation(t *testing.T) {
	if _, err := New(Config{Dialer: link.NewPipeNet(), StreamWindow: 10, SendmeEvery: 20}); err == nil {
		t.Error("SendmeEvery > StreamWindow accepted by client")
	}
	pn := link.NewPipeNet()
	ln, err := pn.Listen("r")
	if err != nil {
		t.Fatal(err)
	}
	id := testIdentityForFlow(t)
	if _, err := relay.New(relay.Config{
		Nickname: "r", Addr: "r", Identity: id, Listener: ln, RelayDialer: pn,
		StreamWindow: 10, SendmeEvery: 20,
	}); err == nil {
		t.Error("SendmeEvery > StreamWindow accepted by relay")
	}
}

func testIdentityForFlow(t *testing.T) *onion.Identity {
	t.Helper()
	id, err := onion.NewIdentity(nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestBuildAutoCircuit(t *testing.T) {
	tn := buildTestNet(t, 6)
	reg := directoryRegistry(t, tn)
	c := newTestClient(t, tn)
	for trial := 0; trial < 5; trial++ {
		circ, err := c.BuildAutoCircuit(reg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if circ.Len() != 3 {
			t.Errorf("auto circuit has %d hops", circ.Len())
		}
		if !circ.Path()[2].Exit {
			t.Error("auto circuit exit not exit-capable")
		}
		st, err := circ.OpenStream("echo")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := echo.NewClient(st).Probe(); err != nil {
			t.Fatal(err)
		}
		st.Close()
		circ.Close()
	}
	if _, err := c.BuildAutoCircuit(nil, 3); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := c.BuildAutoCircuit(reg, 1); err == nil {
		t.Error("1-hop auto circuit accepted")
	}
}

func directoryRegistry(t *testing.T, tn *testNet) *directory.Registry {
	t.Helper()
	reg := directory.NewRegistry()
	for _, d := range tn.descs {
		if err := reg.Publish(d); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}
