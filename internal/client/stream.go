package client

import (
	"errors"
	"io"
	"sync"

	"ting/internal/cell"
)

// Stream is a byte stream attached to a circuit. It implements
// io.ReadWriteCloser; Ting's echo probes are ordinary Reads and Writes.
type Stream struct {
	circ *Circuit
	id   cell.StreamID
	// hop is the circuit position the stream is attached to (Tor's
	// "leaky pipe": streams may exit from any hop, not just the last).
	hop int

	connected chan struct{}

	mu       sync.Mutex
	leftover []byte
	inbox    chan []byte
	reason   string

	// sendTokens implements the outbound flow-control window: one token
	// per DATA cell we may send before the exit acknowledges consumption
	// with a SENDME. recvSinceSendme counts delivered inbound DATA cells
	// toward our own SENDME (touched only by the circuit's read loop).
	sendTokens      chan struct{}
	recvSinceSendme int

	closeOnce sync.Once
	closedCh  chan struct{}
}

func newStream(circ *Circuit, id cell.StreamID, hop int) *Stream {
	window := circ.c.cfg.StreamWindow
	s := &Stream{
		circ:      circ,
		id:        id,
		hop:       hop,
		connected: make(chan struct{}),
		// The inbox must hold a full window or the circuit read loop could
		// stall on a slow application reader before flow control engages.
		inbox:      make(chan []byte, window+16),
		sendTokens: make(chan struct{}, window),
		closedCh:   make(chan struct{}),
	}
	for i := 0; i < window; i++ {
		s.sendTokens <- struct{}{}
	}
	return s
}

// ID returns the stream's circuit-local identifier.
func (s *Stream) ID() cell.StreamID { return cell.StreamID(s.id) }

// deliver handles an inbound relay cell for this stream (called from the
// circuit's read loop).
func (s *Stream) deliver(rc cell.RelayCell) {
	switch rc.Cmd {
	case cell.RelayConnected:
		select {
		case <-s.connected:
		default:
			close(s.connected)
		}
	case cell.RelayData:
		select {
		case s.inbox <- rc.Data:
		case <-s.closedCh:
			return
		}
		// Acknowledge consumed cells so the exit's window refills.
		s.recvSinceSendme++
		if s.recvSinceSendme >= s.circ.c.cfg.SendmeEvery {
			s.recvSinceSendme = 0
			_ = s.circ.sendForward(s.hop, cell.RelayCell{Cmd: cell.RelaySendme, Stream: s.id})
		}
	case cell.RelaySendme:
		for i := 0; i < s.circ.c.cfg.SendmeEvery; i++ {
			select {
			case s.sendTokens <- struct{}{}:
			default:
				i = s.circ.c.cfg.SendmeEvery // window full; drop excess credit
			}
		}
	case cell.RelayEnd:
		s.mu.Lock()
		s.reason = string(rc.Data)
		s.mu.Unlock()
		s.closeLocal()
	default:
		s.circ.c.cfg.Logf("client: stream %d: unexpected %s", s.id, rc.Cmd)
	}
}

func (s *Stream) endReason() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reason == "" {
		return "closed"
	}
	return s.reason
}

// Read returns data from the exit, blocking until some arrives or the
// stream closes.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	if len(s.leftover) > 0 {
		n := copy(p, s.leftover)
		s.leftover = s.leftover[n:]
		s.mu.Unlock()
		return n, nil
	}
	s.mu.Unlock()

	select {
	case chunk := <-s.inbox:
		return s.consume(p, chunk), nil
	case <-s.closedCh:
		// Drain anything that raced with closure.
		select {
		case chunk := <-s.inbox:
			return s.consume(p, chunk), nil
		default:
			return 0, io.EOF
		}
	}
}

// consume copies a delivered chunk into p, stashing any tail as leftover.
// A fully consumed chunk goes back to the cell buffer pool — at that point
// this reader is its only owner. (A partial chunk survives as leftover,
// whose subslice the pool rejects later; it is simply collected.)
func (s *Stream) consume(p []byte, chunk []byte) int {
	n := copy(p, chunk)
	if n < len(chunk) {
		s.mu.Lock()
		s.leftover = chunk[n:]
		s.mu.Unlock()
		return n
	}
	cell.PutBuf(chunk)
	return n
}

// Write sends data toward the destination, fragmenting into relay cells.
func (s *Stream) Write(p []byte) (int, error) {
	select {
	case <-s.closedCh:
		return 0, errors.New("client: write on closed stream")
	default:
	}
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > cell.RelayDataLen {
			n = cell.RelayDataLen
		}
		// Flow control: one window token per DATA cell.
		select {
		case <-s.sendTokens:
		case <-s.closedCh:
			return written, errors.New("client: write on closed stream")
		}
		if err := s.circ.sendForward(s.hop, cell.RelayCell{
			Cmd: cell.RelayData, Stream: s.id, Data: p[:n],
		}); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close ends the stream, telling the exit to drop its side.
func (s *Stream) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closedCh)
		err = s.circ.sendForward(s.hop, cell.RelayCell{Cmd: cell.RelayEnd, Stream: s.id})
		s.circ.dropStream(s.id)
	})
	return err
}

// closeLocal closes without notifying the exit (it already knows, or the
// circuit is gone).
func (s *Stream) closeLocal() {
	s.closeOnce.Do(func() {
		close(s.closedCh)
		s.circ.dropStream(s.id)
	})
}
