package link

import (
	"sync"
	"testing"

	"ting/internal/cell"
)

// tcpPair dials a loopback TCP link pair.
func tcpPair(t *testing.T) (client, server Link) {
	t.Helper()
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, _ = ln.Accept()
	}()
	client, err = TCPDialer{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestTCPSendBatchRecvBatch(t *testing.T) {
	client, server := tcpPair(t)
	bs, ok := client.(BatchSender)
	if !ok {
		t.Fatal("TCP link does not implement BatchSender")
	}
	br, ok := server.(BatchRecver)
	if !ok {
		t.Fatal("TCP link does not implement BatchRecver")
	}

	const total = 20
	sent := make([]cell.Cell, total)
	for i := range sent {
		sent[i] = testCell(uint32(i+1), byte(i))
	}
	if err := bs.SendBatch(sent); err != nil {
		t.Fatal(err)
	}

	// RecvBatch must return at least one cell per call and all cells in
	// order across calls, regardless of how TCP frames them.
	got := make([]cell.Cell, 0, total)
	buf := make([]cell.Cell, 8)
	for len(got) < total {
		n, err := br.RecvBatch(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 {
			t.Fatal("RecvBatch returned 0 cells without error")
		}
		got = append(got, buf[:n]...)
	}
	for i := range sent {
		if got[i] != sent[i] {
			t.Fatalf("cell %d mismatch: circ %d tag %d", i, got[i].Circ, got[i].Payload[0])
		}
	}
}

func TestTCPBatchInterleavesWithSingles(t *testing.T) {
	client, server := tcpPair(t)
	bs := client.(BatchSender)

	if err := sendCell(client, testCell(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := bs.SendBatch([]cell.Cell{testCell(2, 2), testCell(3, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := sendCell(client, testCell(4, 4)); err != nil {
		t.Fatal(err)
	}
	for want := uint32(1); want <= 4; want++ {
		got, err := recvCell(server)
		if err != nil {
			t.Fatal(err)
		}
		if got.Circ != cell.CircID(want) {
			t.Fatalf("cell %d out of order: got circ %d", want, got.Circ)
		}
	}
}

func TestPipeRecvBatch(t *testing.T) {
	a, b := Pipe(8, "a", "b")
	defer a.Close()
	defer b.Close()
	br, ok := b.(BatchRecver)
	if !ok {
		t.Fatal("pipe link does not implement BatchRecver")
	}
	for i := 0; i < 5; i++ {
		if err := sendCell(a, testCell(uint32(i+10), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]cell.Cell, 8)
	got := 0
	for got < 5 {
		n, err := br.RecvBatch(buf[:])
		if err != nil {
			t.Fatal(err)
		}
		if n < 1 {
			t.Fatal("RecvBatch returned 0 cells without error")
		}
		for k := 0; k < n; k++ {
			if buf[k].Circ != cell.CircID(got+10) {
				t.Fatalf("cell %d out of order: circ %d", got, buf[k].Circ)
			}
			got++
		}
	}
}

func TestRecvBatchSurfacesCloseAfterDrain(t *testing.T) {
	client, server := tcpPair(t)
	bs := client.(BatchSender)
	br := server.(BatchRecver)
	if err := bs.SendBatch([]cell.Cell{testCell(1, 0), testCell(2, 0)}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	buf := make([]cell.Cell, 4)
	got := 0
	for {
		n, err := br.RecvBatch(buf)
		got += n
		if err != nil {
			break
		}
		if n == 0 {
			t.Fatal("RecvBatch returned 0 cells without error")
		}
	}
	if got != 2 {
		t.Errorf("drained %d cells before close error, want 2", got)
	}
}
