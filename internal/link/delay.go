package link

import (
	"sync"
	"time"

	"ting/internal/cell"
)

// Delayed wraps a Link so that cells experience the given one-way delays:
// outbound cells arrive at the peer sendDelay later, and inbound cells are
// surfaced recvDelay after the peer sent them. Ordering is preserved in
// both directions. This is how the loopback overlay acquires the synthetic
// Internet's ground-truth latencies.
//
// The returned Link owns the inner link: closing it closes the inner link.
func Delayed(inner Link, sendDelay, recvDelay time.Duration) Link {
	d := &delayedLink{
		inner:  inner,
		sendQ:  make(chan timedCell, 1024),
		recvQ:  make(chan timedResult, 1024),
		closed: make(chan struct{}),
	}
	d.sendDelay = sendDelay
	d.recvDelay = recvDelay
	go d.sendPump()
	go d.recvPump()
	return d
}

type timedCell struct {
	c   cell.Cell
	due time.Time
}

type timedResult struct {
	c   cell.Cell
	err error
	due time.Time
}

type delayedLink struct {
	inner     Link
	sendDelay time.Duration
	recvDelay time.Duration

	sendQ chan timedCell
	recvQ chan timedResult

	closeOnce sync.Once
	closed    chan struct{}
}

func (d *delayedLink) Send(c *cell.Cell) error {
	select {
	case <-d.closed:
		return ErrClosed
	default:
	}
	select {
	case <-d.closed:
		return ErrClosed
	case d.sendQ <- timedCell{c: *c, due: time.Now().Add(d.sendDelay)}:
		return nil
	}
}

func (d *delayedLink) sendPump() {
	for {
		select {
		case <-d.closed:
			return
		case tc := <-d.sendQ:
			sleepUntil(tc.due, d.closed)
			if err := d.inner.Send(&tc.c); err != nil {
				// The peer is gone; nothing useful to do with the error
				// here — the caller will learn via Recv or the next Send
				// after close.
				return
			}
		}
	}
}

func (d *delayedLink) recvPump() {
	for {
		var tr timedResult
		tr.err = d.inner.Recv(&tr.c)
		tr.due = time.Now().Add(d.recvDelay)
		select {
		case <-d.closed:
			return
		case d.recvQ <- tr:
		}
		if tr.err != nil {
			return
		}
	}
}

func (d *delayedLink) Recv(c *cell.Cell) error {
	select {
	case <-d.closed:
		return ErrClosed
	case tr := <-d.recvQ:
		if tr.err != nil {
			return tr.err
		}
		sleepUntil(tr.due, d.closed)
		*c = tr.c
		return nil
	}
}

func (d *delayedLink) Close() error {
	var err error
	d.closeOnce.Do(func() {
		close(d.closed)
		err = d.inner.Close()
	})
	return err
}

func (d *delayedLink) RemoteAddr() string { return d.inner.RemoteAddr() }

// sleepUntil sleeps until t or until cancel closes, whichever is first.
func sleepUntil(t time.Time, cancel <-chan struct{}) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-cancel:
	}
}
