package link

import (
	"fmt"
	"sync"
)

// PipeNet is an in-process network: a registry of named listeners connected
// by Pipe links. It lets an entire mintor overlay — dozens of relays, a
// directory, clients, echo servers — run inside one test process without
// sockets.
type PipeNet struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener
}

// NewPipeNet creates an empty in-process network.
func NewPipeNet() *PipeNet {
	return &PipeNet{listeners: make(map[string]*pipeListener)}
}

// Listen registers addr and returns its listener. Addresses are arbitrary
// unique strings (we use relay nicknames).
func (n *PipeNet) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("link: address %s already in use", addr)
	}
	l := &pipeListener{
		net:    n,
		addr:   addr,
		accept: make(chan Link, 16),
		closed: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener registered at addr. PipeNet implements
// Dialer.
func (n *PipeNet) Dial(addr string) (Link, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("link: no listener at %s", addr)
	}
	clientHalf, serverHalf := Pipe(0, "dialer", addr)
	select {
	case <-l.closed:
		return nil, fmt.Errorf("link: listener %s closed", addr)
	case l.accept <- serverHalf:
		return clientHalf, nil
	}
}

type pipeListener struct {
	net    *PipeNet
	addr   string
	accept chan Link

	closeOnce sync.Once
	closed    chan struct{}
}

func (l *pipeListener) Accept() (Link, error) {
	select {
	case <-l.closed:
		return nil, ErrClosed
	case lk := <-l.accept:
		return lk, nil
	}
}

func (l *pipeListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *pipeListener) Addr() string { return l.addr }
