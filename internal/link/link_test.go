package link

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ting/internal/cell"
)

func testCell(circ uint32, tag byte) cell.Cell {
	c := cell.Cell{Circ: cell.CircID(circ), Cmd: cell.Relay}
	c.Payload[0] = tag
	return c
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4, "a", "b")
	defer a.Close()
	defer b.Close()

	if a.RemoteAddr() != "b" || b.RemoteAddr() != "a" {
		t.Errorf("RemoteAddrs: %q, %q", a.RemoteAddr(), b.RemoteAddr())
	}
	want := testCell(7, 0x42)
	if err := sendCell(a, want); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("cell mismatch over pipe")
	}
	// And the other direction.
	if err := sendCell(b, testCell(8, 1)); err != nil {
		t.Fatal(err)
	}
	if got, err := recvCell(a); err != nil || got.Circ != 8 {
		t.Errorf("reverse direction: %v, %v", got, err)
	}
}

func TestPipeOrdering(t *testing.T) {
	a, b := Pipe(100, "a", "b")
	defer a.Close()
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := sendCell(a, testCell(uint32(i), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := recvCell(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Circ != cell.CircID(i) {
			t.Fatalf("out of order: got %d at position %d", got.Circ, i)
		}
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe(1, "a", "b")
	done := make(chan error, 1)
	go func() {
		_, err := recvCell(b)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Recv after peer close should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on peer close")
	}
	if err := sendCell(a, testCell(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed link = %v, want ErrClosed", err)
	}
}

func TestPipeDrainsBufferAfterPeerClose(t *testing.T) {
	a, b := Pipe(4, "a", "b")
	if err := sendCell(a, testCell(5, 5)); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := recvCell(b)
	if err != nil {
		t.Fatalf("buffered cell lost on close: %v", err)
	}
	if got.Circ != 5 {
		t.Errorf("got circ %d", got.Circ)
	}
	if _, err := recvCell(b); err == nil {
		t.Error("second Recv should fail after drain")
	}
}

func TestTCPLinkRoundTrip(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var serverLink Link
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serverLink, _ = ln.Accept()
	}()

	clientLink, err := TCPDialer{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serverLink == nil {
		t.Fatal("accept failed")
	}
	defer clientLink.Close()
	defer serverLink.Close()

	want := testCell(99, 0xAB)
	if err := sendCell(clientLink, want); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(serverLink)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("cell mismatch over TCP")
	}
	// Reverse direction.
	if err := sendCell(serverLink, testCell(100, 1)); err != nil {
		t.Fatal(err)
	}
	if got, err := recvCell(clientLink); err != nil || got.Circ != 100 {
		t.Errorf("reverse: %v %v", got, err)
	}
}

func TestTCPDialError(t *testing.T) {
	if _, err := (TCPDialer{}).Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestDelayedLinkInjectsLatency(t *testing.T) {
	a, b := Pipe(16, "a", "b")
	const oneWay = 30 * time.Millisecond
	da := Delayed(a, oneWay, oneWay)
	defer da.Close()
	defer b.Close()

	// Echo server on the raw side.
	go func() {
		for {
			c, err := recvCell(b)
			if err != nil {
				return
			}
			if err := sendCell(b, c); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	if err := sendCell(da, testCell(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := recvCell(da); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 2*oneWay {
		t.Errorf("RTT %v below injected 2×%v", rtt, oneWay)
	}
	if rtt > 2*oneWay+150*time.Millisecond {
		t.Errorf("RTT %v far above injected latency", rtt)
	}
}

func TestDelayedLinkPreservesOrder(t *testing.T) {
	a, b := Pipe(64, "a", "b")
	da := Delayed(a, 5*time.Millisecond, 0)
	defer da.Close()
	defer b.Close()
	for i := 0; i < 20; i++ {
		if err := sendCell(da, testCell(uint32(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		got, err := recvCell(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Circ != cell.CircID(i) {
			t.Fatalf("reordered: got %d at %d", got.Circ, i)
		}
	}
}

func TestDelayedLinkClose(t *testing.T) {
	a, b := Pipe(4, "a", "b")
	da := Delayed(a, time.Millisecond, time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := recvCell(da)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	da.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Recv on closed delayed link should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
	if err := sendCell(da, testCell(0, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v", err)
	}
	b.Close()
}

func TestDelayedPropagatesPeerClose(t *testing.T) {
	a, b := Pipe(4, "a", "b")
	da := Delayed(a, 0, 0)
	defer da.Close()
	b.Close()
	if _, err := recvCell(da); err == nil {
		t.Error("Recv should fail once peer closes")
	}
}

func TestPipeNetDialAndListen(t *testing.T) {
	n := NewPipeNet()
	ln, err := n.Listen("relay1")
	if err != nil {
		t.Fatal(err)
	}
	if ln.Addr() != "relay1" {
		t.Errorf("Addr = %q", ln.Addr())
	}
	go func() {
		l, err := ln.Accept()
		if err != nil {
			return
		}
		c, err := recvCell(l)
		if err != nil {
			return
		}
		_ = sendCell(l, c)
	}()
	lk, err := n.Dial("relay1")
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	if err := sendCell(lk, testCell(3, 3)); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil || got.Circ != 3 {
		t.Errorf("echo through pipenet: %v %v", got, err)
	}
}

func TestPipeNetErrors(t *testing.T) {
	n := NewPipeNet()
	if _, err := n.Dial("ghost"); err == nil {
		t.Error("dial to unknown address should fail")
	}
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Error("duplicate listen should fail")
	}
}

func TestPipeNetListenerClose(t *testing.T) {
	n := NewPipeNet()
	ln, err := n.Listen("r")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Accept on closed listener should fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock")
	}
	if _, err := n.Dial("r"); err == nil {
		t.Error("dial after listener close should fail")
	}
	// Address is reusable after close.
	if _, err := n.Listen("r"); err != nil {
		t.Errorf("re-listen after close: %v", err)
	}
}

func TestConcurrentSendRecv(t *testing.T) {
	a, b := Pipe(8, "a", "b")
	defer a.Close()
	defer b.Close()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := sendCell(a, testCell(uint32(i), 0)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			got, err := recvCell(b)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if got.Circ != cell.CircID(i) {
				t.Errorf("order broken at %d", i)
				return
			}
		}
	}()
	wg.Wait()
}

func TestDialerFunc(t *testing.T) {
	pn := NewPipeNet()
	ln, err := pn.Listen("relay")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var dialed []string
	var d Dialer = DialerFunc(func(addr string) (Link, error) {
		dialed = append(dialed, addr)
		return pn.Dial(addr)
	})
	lk, err := d.Dial("relay")
	if err != nil {
		t.Fatal(err)
	}
	lk.Close()
	if _, err := d.Dial("ghost"); err == nil {
		t.Error("dial to unknown relay succeeded")
	}
	if len(dialed) != 2 || dialed[0] != "relay" || dialed[1] != "ghost" {
		t.Errorf("adapter not transparent: %v", dialed)
	}
}
