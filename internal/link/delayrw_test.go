package link

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

func TestDelayedRWRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	d := DelayedRW(a, 0, 0)
	defer d.Close()
	go func() {
		buf := make([]byte, 64)
		n, err := b.Read(buf)
		if err != nil {
			return
		}
		b.Write(buf[:n])
	}()
	msg := []byte("through the delayed pipe")
	if _, err := d.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(d, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestDelayedRWInjectsLatency(t *testing.T) {
	a, b := net.Pipe()
	const oneWay = 25 * time.Millisecond
	d := DelayedRW(a, oneWay, oneWay)
	defer d.Close()
	go func() {
		buf := make([]byte, 16)
		for {
			n, err := b.Read(buf)
			if err != nil {
				return
			}
			if _, err := b.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := d.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(d, buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 2*oneWay {
		t.Errorf("RTT %v below injected 2×%v", rtt, oneWay)
	}
	if rtt > 2*oneWay+150*time.Millisecond {
		t.Errorf("RTT %v far above injected", rtt)
	}
}

func TestDelayedRWPartialReads(t *testing.T) {
	a, b := net.Pipe()
	d := DelayedRW(a, 0, 0)
	defer d.Close()
	go func() {
		b.Write([]byte("0123456789"))
	}()
	// Read in tiny pieces: the leftover buffer must preserve order.
	var got []byte
	buf := make([]byte, 3)
	for len(got) < 10 {
		n, err := d.Read(buf)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "0123456789" {
		t.Errorf("got %q", got)
	}
}

func TestDelayedRWCloseUnblocks(t *testing.T) {
	a, _ := net.Pipe()
	d := DelayedRW(a, time.Millisecond, time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := d.Read(make([]byte, 4))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	d.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read on closed DelayedRW succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock on close")
	}
	if _, err := d.Write([]byte("x")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestDelayedRWPeerEOF(t *testing.T) {
	a, b := net.Pipe()
	d := DelayedRW(a, 0, 0)
	defer d.Close()
	b.Close()
	if _, err := d.Read(make([]byte, 4)); err == nil {
		t.Error("read past peer EOF succeeded")
	}
}
