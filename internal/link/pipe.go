package link

import (
	"fmt"
	"sync"

	"ting/internal/cell"
)

// pipeHalf is one end of an in-process Link pair.
type pipeHalf struct {
	peerAddr string
	in       chan cell.Cell
	out      chan cell.Cell

	closeOnce sync.Once
	closed    chan struct{}
	// peerClosed is the other half's closed channel; Recv fails once the
	// peer is gone and the buffer drains.
	peerClosed chan struct{}
}

// Pipe returns a connected pair of in-process Links with the given buffer
// capacity per direction. It is the zero-latency building block the
// in-process network uses; wrap with Delayed for long-haul paths.
func Pipe(capacity int, addrA, addrB string) (Link, Link) {
	if capacity <= 0 {
		capacity = 256
	}
	ab := make(chan cell.Cell, capacity)
	ba := make(chan cell.Cell, capacity)
	a := &pipeHalf{peerAddr: addrB, in: ba, out: ab, closed: make(chan struct{})}
	b := &pipeHalf{peerAddr: addrA, in: ab, out: ba, closed: make(chan struct{})}
	a.peerClosed = b.closed
	b.peerClosed = a.closed
	return a, b
}

func (p *pipeHalf) Send(c *cell.Cell) error {
	// Check our own closure first: a buffered out channel could otherwise
	// win the select below even after Close.
	select {
	case <-p.closed:
		return ErrClosed
	default:
	}
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peerClosed:
		return fmt.Errorf("link: peer %s closed", p.peerAddr)
	case p.out <- *c:
		return nil
	}
}

// SendBatch implements BatchSender over the channel transport.
func (p *pipeHalf) SendBatch(cs []cell.Cell) error {
	for i := range cs {
		if err := p.Send(&cs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (p *pipeHalf) Recv(c *cell.Cell) error {
	select {
	case <-p.closed:
		return ErrClosed
	case *c = <-p.in:
		return nil
	case <-p.peerClosed:
		// Drain anything already buffered before reporting closure.
		select {
		case *c = <-p.in:
			return nil
		default:
			return fmt.Errorf("link: peer %s closed", p.peerAddr)
		}
	}
}

// RecvBatch implements BatchRecver: one blocking receive, then a
// non-blocking drain of whatever the peer has already queued.
func (p *pipeHalf) RecvBatch(cs []cell.Cell) (int, error) {
	if len(cs) == 0 {
		return 0, nil
	}
	if err := p.Recv(&cs[0]); err != nil {
		return 0, err
	}
	n := 1
	for n < len(cs) {
		select {
		case cs[n] = <-p.in:
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *pipeHalf) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	return nil
}

func (p *pipeHalf) RemoteAddr() string { return p.peerAddr }
