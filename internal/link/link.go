// Package link provides cell-oriented transport between mintor nodes: a
// Link abstraction, a TCP implementation, an in-process pipe implementation,
// and a latency-injecting wrapper that turns either into a long-haul path.
//
// The Ting reproduction runs its overlay on loopback (there is no real
// Internet offline), so inter-node latency is injected here, at the link
// layer, from the ground-truth model in package inet. Everything above —
// relays, clients, Ting itself — is transport-agnostic.
package link

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"ting/internal/cell"
)

// ErrClosed is returned by operations on a closed link.
var ErrClosed = errors.New("link: closed")

// Link is an ordered, reliable, cell-oriented connection between two nodes.
// Send and Recv may be used concurrently with each other; neither may be
// called concurrently with itself.
//
// Both directions pass cells by pointer: a cell is 512 bytes, and the relay
// forward path moves every cell through several wrapper layers (faults,
// delay, transport), so by-value signatures would copy each cell four or
// five times per hop. Send does not retain c past the call; Recv overwrites
// *c in place.
type Link interface {
	// Send transmits one cell. The callee does not retain c.
	Send(c *cell.Cell) error
	// Recv blocks for the next cell and decodes it into *c.
	Recv(c *cell.Cell) error
	// Close tears the link down; pending Recv calls fail.
	Close() error
	// RemoteAddr names the peer, for logs and circuit bookkeeping.
	RemoteAddr() string
}

// BatchRecver is an optional Link extension: RecvBatch blocks for the first
// cell, then fills as many further entries of cs as are available without
// blocking, returning how many were filled (≥ 1 on nil error). Receive
// loops use it to drain a burst in one wakeup and hand the run to batched
// onion crypto.
type BatchRecver interface {
	RecvBatch(cs []cell.Cell) (int, error)
}

// BatchSender is an optional Link extension: SendBatch transmits cs
// back-to-back with at most one flush, preserving order. The callee does
// not retain cs.
type BatchSender interface {
	SendBatch(cs []cell.Cell) error
}

// Dialer opens Links to named peers.
type Dialer interface {
	Dial(addr string) (Link, error)
}

// DialerFunc adapts a function to the Dialer interface, the way
// http.HandlerFunc does for handlers. Composed dialers — latency injection,
// fault injection — are function wrappers, so the adapter lives here.
type DialerFunc func(addr string) (Link, error)

// Dial implements Dialer.
func (f DialerFunc) Dial(addr string) (Link, error) { return f(addr) }

// Listener accepts inbound Links.
type Listener interface {
	Accept() (Link, error)
	Close() error
	Addr() string
}

// --- TCP implementation ---

// writeBatch is how many cells the send buffer holds before it backs up
// into the socket anyway. Relay pairs multiplex every circuit between them
// over one link, so bursts of concurrent sends are common; batching them
// turns one syscall per cell per hop into one per burst.
const writeBatch = 8

// netLink frames cells over a stream connection: each cell is exactly
// cell.Size bytes, so framing is trivial and constant-rate.
//
// Writes are coalesced with a last-writer-flushes scheme: every Send
// buffers its cell and only the Send that observes no other in-flight
// sender flushes. A lone Send therefore still costs exactly one syscall
// with no added latency — crucial for an RTT instrument — while
// concurrent senders ride the same flush.
//
// Reads go through a bufio.Reader so RecvBatch can see whole cells already
// buffered from a burst and return them without extra syscalls.
type netLink struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	bw   *bufio.Writer
	// pending counts Sends that have announced themselves but not yet
	// decided whether to flush; the one that decrements it to zero flushes.
	pending atomic.Int32
	rbuf    [cell.Size]byte
	wbuf    [cell.Size]byte
}

// NewNetLink wraps a stream connection as a Link.
func NewNetLink(conn net.Conn) Link {
	return &netLink{
		conn: conn,
		br:   bufio.NewReaderSize(conn, writeBatch*cell.Size),
		bw:   bufio.NewWriterSize(conn, writeBatch*cell.Size),
	}
}

func (l *netLink) Send(c *cell.Cell) error {
	l.pending.Add(1)
	l.wmu.Lock()
	defer l.wmu.Unlock()
	c.MarshalInto(l.wbuf[:])
	_, err := l.bw.Write(l.wbuf[:])
	// Decrement unconditionally so failures cannot strand the counter.
	// If another Send is already pending it holds the flush obligation:
	// it increments before we decrement, so a nonzero result here proves
	// a later flush check is still coming while the buffer is nonempty.
	if l.pending.Add(-1) == 0 && err == nil {
		err = l.bw.Flush()
	}
	if err != nil {
		return fmt.Errorf("link: send: %w", err)
	}
	return nil
}

// SendBatch implements BatchSender: all cells share one buffered write run
// and the flush obligation is claimed once for the whole batch.
func (l *netLink) SendBatch(cs []cell.Cell) error {
	if len(cs) == 0 {
		return nil
	}
	l.pending.Add(1)
	l.wmu.Lock()
	defer l.wmu.Unlock()
	var err error
	for i := range cs {
		cs[i].MarshalInto(l.wbuf[:])
		if _, err = l.bw.Write(l.wbuf[:]); err != nil {
			break
		}
	}
	if l.pending.Add(-1) == 0 && err == nil {
		err = l.bw.Flush()
	}
	if err != nil {
		return fmt.Errorf("link: send: %w", err)
	}
	return nil
}

func (l *netLink) Recv(c *cell.Cell) error {
	if err := l.readCell(c); err != nil {
		return err
	}
	return nil
}

// RecvBatch implements BatchRecver: one blocking read for the first cell,
// then whole cells already sitting in the read buffer are decoded without
// touching the socket again.
func (l *netLink) RecvBatch(cs []cell.Cell) (int, error) {
	if len(cs) == 0 {
		return 0, nil
	}
	if err := l.readCell(&cs[0]); err != nil {
		return 0, err
	}
	n := 1
	for n < len(cs) && l.br.Buffered() >= cell.Size {
		if err := l.readCell(&cs[n]); err != nil {
			// The first n cells are valid; surface the error on the next call.
			return n, nil
		}
		n++
	}
	return n, nil
}

func (l *netLink) readCell(c *cell.Cell) error {
	if _, err := io.ReadFull(l.br, l.rbuf[:]); err != nil {
		return fmt.Errorf("link: recv: %w", err)
	}
	return cell.UnmarshalInto(c, l.rbuf[:])
}

func (l *netLink) Close() error       { return l.conn.Close() }
func (l *netLink) RemoteAddr() string { return l.conn.RemoteAddr().String() }

// tcpListener adapts net.Listener to Listener.
type tcpListener struct {
	ln net.Listener
}

// ListenTCP starts a cell listener on a TCP address ("127.0.0.1:0" picks a
// free port; read the actual one back from Addr).
func ListenTCP(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("link: listen %s: %w", addr, err)
	}
	return &tcpListener{ln: ln}, nil
}

func (t *tcpListener) Accept() (Link, error) {
	conn, err := t.ln.Accept()
	if err != nil {
		return nil, err
	}
	return NewNetLink(conn), nil
}

func (t *tcpListener) Close() error { return t.ln.Close() }
func (t *tcpListener) Addr() string { return t.ln.Addr().String() }

// TCPDialer dials cell links over TCP.
type TCPDialer struct{}

// Dial connects to addr.
func (TCPDialer) Dial(addr string) (Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("link: dial %s: %w", addr, err)
	}
	return NewNetLink(conn), nil
}
