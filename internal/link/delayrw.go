package link

import (
	"io"
	"sync"
	"time"
)

// DelayedRW wraps a byte stream so writes arrive sendDelay later and reads
// surface recvDelay after the peer wrote them — the byte-stream counterpart
// of Delayed, used for exit-relay connections to destinations.
func DelayedRW(inner io.ReadWriteCloser, sendDelay, recvDelay time.Duration) io.ReadWriteCloser {
	d := &delayedRW{
		inner:  inner,
		sendQ:  make(chan timedBytes, 1024),
		recvQ:  make(chan timedBytesResult, 1024),
		closed: make(chan struct{}),
	}
	d.sendDelay = sendDelay
	d.recvDelay = recvDelay
	go d.sendPump()
	go d.recvPump()
	return d
}

type timedBytes struct {
	b   []byte
	due time.Time
}

type timedBytesResult struct {
	b   []byte
	err error
	due time.Time
}

type delayedRW struct {
	inner     io.ReadWriteCloser
	sendDelay time.Duration
	recvDelay time.Duration

	sendQ chan timedBytes
	recvQ chan timedBytesResult

	mu       sync.Mutex
	leftover []byte

	closeOnce sync.Once
	closed    chan struct{}
}

func (d *delayedRW) Write(p []byte) (int, error) {
	cp := append([]byte(nil), p...)
	select {
	case <-d.closed:
		return 0, ErrClosed
	default:
	}
	select {
	case <-d.closed:
		return 0, ErrClosed
	case d.sendQ <- timedBytes{b: cp, due: time.Now().Add(d.sendDelay)}:
		return len(p), nil
	}
}

func (d *delayedRW) sendPump() {
	for {
		select {
		case <-d.closed:
			return
		case tb := <-d.sendQ:
			sleepUntil(tb.due, d.closed)
			if _, err := d.inner.Write(tb.b); err != nil {
				return
			}
		}
	}
}

func (d *delayedRW) recvPump() {
	buf := make([]byte, 32*1024)
	for {
		n, err := d.inner.Read(buf)
		var cp []byte
		if n > 0 {
			cp = append([]byte(nil), buf[:n]...)
		}
		tr := timedBytesResult{b: cp, err: err, due: time.Now().Add(d.recvDelay)}
		select {
		case <-d.closed:
			return
		case d.recvQ <- tr:
		}
		if err != nil {
			return
		}
	}
}

func (d *delayedRW) Read(p []byte) (int, error) {
	d.mu.Lock()
	if len(d.leftover) > 0 {
		n := copy(p, d.leftover)
		d.leftover = d.leftover[n:]
		d.mu.Unlock()
		return n, nil
	}
	d.mu.Unlock()

	select {
	case <-d.closed:
		return 0, ErrClosed
	case tr := <-d.recvQ:
		if tr.err != nil && len(tr.b) == 0 {
			return 0, tr.err
		}
		sleepUntil(tr.due, d.closed)
		n := copy(p, tr.b)
		if n < len(tr.b) {
			d.mu.Lock()
			d.leftover = tr.b[n:]
			d.mu.Unlock()
		}
		return n, nil
	}
}

func (d *delayedRW) Close() error {
	var err error
	d.closeOnce.Do(func() {
		close(d.closed)
		err = d.inner.Close()
	})
	return err
}
