package onion

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// ReplyLen is the length of the handshake reply carried in a CREATED cell:
// the server's ephemeral public key plus a 32-byte authentication tag.
const ReplyLen = KeyLen + 32

// ErrHandshakeAuth is returned when the server's authentication tag does
// not verify.
var ErrHandshakeAuth = errors.New("onion: handshake authentication failed")

// ClientHandshake is the client half of the ntor-style handshake for one
// hop. Create it with StartHandshake, send Onionskin() in a CREATE or
// EXTEND, then call Complete with the reply.
type ClientHandshake struct {
	relayPub PublicKey
	eph      *ecdh.PrivateKey
}

// StartHandshake begins a handshake with the relay owning relayPub.
// rnd nil means crypto/rand.
func StartHandshake(relayPub PublicKey, rnd io.Reader) (*ClientHandshake, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	if relayPub.IsZero() {
		return nil, errors.New("onion: zero relay public key")
	}
	eph, err := ecdh.X25519().GenerateKey(rnd)
	if err != nil {
		return nil, fmt.Errorf("onion: ephemeral key: %w", err)
	}
	return &ClientHandshake{relayPub: relayPub, eph: eph}, nil
}

// Onionskin returns the client's handshake message (its ephemeral public
// key), exactly KeyLen bytes.
func (ch *ClientHandshake) Onionskin() []byte {
	return ch.eph.PublicKey().Bytes()
}

// Complete processes the relay's reply and returns the established hop
// state.
func (ch *ClientHandshake) Complete(reply []byte) (*HopState, error) {
	if len(reply) != ReplyLen {
		return nil, fmt.Errorf("onion: reply length %d, want %d", len(reply), ReplyLen)
	}
	var serverEph PublicKey
	copy(serverEph[:], reply[:KeyLen])
	yPub, err := serverEph.ecdh()
	if err != nil {
		return nil, err
	}
	bPub, err := ch.relayPub.ecdh()
	if err != nil {
		return nil, err
	}
	s1, err := ch.eph.ECDH(yPub) // x·Y
	if err != nil {
		return nil, fmt.Errorf("onion: ecdh: %w", err)
	}
	s2, err := ch.eph.ECDH(bPub) // x·B
	if err != nil {
		return nil, fmt.Errorf("onion: ecdh: %w", err)
	}
	ks := deriveKeys(secretInput(s1, s2, ch.relayPub[:], ch.Onionskin(), serverEph[:]))
	want := computeAuth(ks.auth)
	if !hmac.Equal(want[:], reply[KeyLen:]) {
		return nil, ErrHandshakeAuth
	}
	return newHopState(ks)
}

// ServerHandshake processes a client onionskin at a relay holding id,
// returning the reply to send back in a CREATED/EXTENDED cell and the
// established hop state.
func ServerHandshake(id *Identity, onionskin []byte, rnd io.Reader) (reply []byte, hop *HopState, err error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	if len(onionskin) != KeyLen {
		return nil, nil, fmt.Errorf("onion: onionskin length %d, want %d", len(onionskin), KeyLen)
	}
	xPub, err := ecdh.X25519().NewPublicKey(onionskin)
	if err != nil {
		return nil, nil, fmt.Errorf("onion: bad onionskin: %w", err)
	}
	eph, err := ecdh.X25519().GenerateKey(rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("onion: ephemeral key: %w", err)
	}
	s1, err := eph.ECDH(xPub) // y·X
	if err != nil {
		return nil, nil, fmt.Errorf("onion: ecdh: %w", err)
	}
	s2, err := id.priv.ECDH(xPub) // b·X
	if err != nil {
		return nil, nil, fmt.Errorf("onion: ecdh: %w", err)
	}
	pub := id.Public()
	ks := deriveKeys(secretInput(s1, s2, pub[:], onionskin, eph.PublicKey().Bytes()))
	hop, err = newHopState(ks)
	if err != nil {
		return nil, nil, err
	}
	auth := computeAuth(ks.auth)
	reply = make([]byte, 0, ReplyLen)
	reply = append(reply, eph.PublicKey().Bytes()...)
	reply = append(reply, auth[:]...)
	return reply, hop, nil
}

// secretInput builds the transcript-bound secret for the KDF:
// ECDH results followed by all public values, as in ntor.
func secretInput(s1, s2, relayPub, clientEph, serverEph []byte) []byte {
	in := make([]byte, 0, len(s1)+len(s2)+3*KeyLen+len(protoID))
	in = append(in, s1...)
	in = append(in, s2...)
	in = append(in, relayPub...)
	in = append(in, clientEph...)
	in = append(in, serverEph...)
	in = append(in, protoID...)
	return in
}
