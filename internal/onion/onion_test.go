package onion

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
	"testing/quick"

	"ting/internal/cell"
)

// establish runs a full handshake, returning the client's and relay's hop
// states.
func establish(t *testing.T, seed int64) (client, relay *HopState) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	id, err := NewIdentity(rnd)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := StartHandshake(id.Public(), rnd)
	if err != nil {
		t.Fatal(err)
	}
	reply, relayHop, err := ServerHandshake(id, ch.Onionskin(), rnd)
	if err != nil {
		t.Fatal(err)
	}
	clientHop, err := ch.Complete(reply)
	if err != nil {
		t.Fatal(err)
	}
	return clientHop, relayHop
}

func TestHandshakeEstablishesSharedKeys(t *testing.T) {
	client, relay := establish(t, 1)
	// A payload sealed+encrypted by the client must decrypt and verify at
	// the relay.
	rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 5, Data: []byte("hello onion")}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	client.SealForward(&p)
	client.CryptForward(&p)
	relay.CryptForward(&p)
	if !relay.VerifyForward(&p) {
		t.Fatal("relay did not recognize client's cell")
	}
	got, err := cell.UnmarshalPayload(&p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != "hello onion" {
		t.Errorf("data = %q", got.Data)
	}
}

func TestHandshakeAuthRejectsTamperedReply(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	id, _ := NewIdentity(rnd)
	ch, _ := StartHandshake(id.Public(), rnd)
	reply, _, err := ServerHandshake(id, ch.Onionskin(), rnd)
	if err != nil {
		t.Fatal(err)
	}
	reply[len(reply)-1] ^= 0xFF
	if _, err := ch.Complete(reply); err != ErrHandshakeAuth {
		t.Errorf("Complete with tampered auth = %v, want ErrHandshakeAuth", err)
	}
}

func TestHandshakeRejectsWrongIdentity(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	idA, _ := NewIdentity(rnd)
	idB, _ := NewIdentity(rnd)
	// Client thinks it's talking to A, but B answers.
	ch, _ := StartHandshake(idA.Public(), rnd)
	reply, _, err := ServerHandshake(idB, ch.Onionskin(), rnd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Complete(reply); err == nil {
		t.Error("handshake with wrong identity should fail")
	}
}

func TestHandshakeInputValidation(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	id, _ := NewIdentity(rnd)
	if _, err := StartHandshake(PublicKey{}, rnd); err == nil {
		t.Error("zero relay key should be rejected")
	}
	if _, _, err := ServerHandshake(id, make([]byte, KeyLen-1), rnd); err == nil {
		t.Error("short onionskin should be rejected")
	}
	ch, _ := StartHandshake(id.Public(), rnd)
	if _, err := ch.Complete(make([]byte, ReplyLen-1)); err == nil {
		t.Error("short reply should be rejected")
	}
}

func TestHandshakeSessionsDiffer(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	id, _ := NewIdentity(rnd)
	ch1, _ := StartHandshake(id.Public(), rnd)
	ch2, _ := StartHandshake(id.Public(), rnd)
	if bytes.Equal(ch1.Onionskin(), ch2.Onionskin()) {
		t.Error("two handshakes produced identical onionskins")
	}
}

func TestThreeHopOnionRoundTrip(t *testing.T) {
	var cc CircuitCrypto
	relays := make([]*HopState, 3)
	for i := range relays {
		c, r := establish(t, int64(10+i))
		cc.AddHop(c)
		relays[i] = r
	}
	if cc.Len() != 3 {
		t.Fatalf("Len = %d", cc.Len())
	}

	// Forward: client → hop2 (the exit).
	rc := cell.RelayCell{Cmd: cell.RelayBegin, Stream: 1, Data: []byte("echo:7")}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.EncryptForward(2, &p); err != nil {
		t.Fatal(err)
	}
	// Hop 0 and 1 each remove a layer and must NOT recognize the cell.
	for i := 0; i < 2; i++ {
		relays[i].CryptForward(&p)
		if relays[i].VerifyForward(&p) {
			t.Fatalf("hop %d recognized a cell addressed to hop 2", i)
		}
	}
	relays[2].CryptForward(&p)
	if !relays[2].VerifyForward(&p) {
		t.Fatal("exit did not recognize its cell")
	}
	got, err := cell.UnmarshalPayload(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != cell.RelayBegin || string(got.Data) != "echo:7" {
		t.Errorf("decrypted %+v", got)
	}

	// Backward: exit → client, each hop adding its layer.
	back := cell.RelayCell{Cmd: cell.RelayConnected, Stream: 1}
	bp, err := back.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	relays[2].SealBackward(&bp)
	relays[2].CryptBackward(&bp)
	relays[1].CryptBackward(&bp)
	relays[0].CryptBackward(&bp)
	hop, err := cc.DecryptBackward(&bp)
	if err != nil {
		t.Fatal(err)
	}
	if hop != 2 {
		t.Errorf("recognized at hop %d, want 2", hop)
	}
	gotBack, err := cell.UnmarshalPayload(&bp)
	if err != nil {
		t.Fatal(err)
	}
	if gotBack.Cmd != cell.RelayConnected {
		t.Errorf("backward cmd = %v", gotBack.Cmd)
	}
}

func TestMiddleHopAddressing(t *testing.T) {
	// A cell addressed to hop 0 of a 2-hop circuit must be recognized there
	// and never reach hop 1.
	var cc CircuitCrypto
	c0, r0 := establish(t, 20)
	c1, _ := establish(t, 21)
	cc.AddHop(c0)
	cc.AddHop(c1)

	rc := cell.RelayCell{Cmd: cell.RelayExtend, Data: []byte("next-relay-info")}
	p, _ := rc.MarshalPayload()
	if err := cc.EncryptForward(0, &p); err != nil {
		t.Fatal(err)
	}
	r0.CryptForward(&p)
	if !r0.VerifyForward(&p) {
		t.Fatal("hop 0 did not recognize its EXTEND")
	}
}

func TestSequentialCellsStayInSync(t *testing.T) {
	client, relay := establish(t, 30)
	for i := 0; i < 50; i++ {
		rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 9, Data: []byte{byte(i)}}
		p, _ := rc.MarshalPayload()
		client.SealForward(&p)
		client.CryptForward(&p)
		relay.CryptForward(&p)
		if !relay.VerifyForward(&p) {
			t.Fatalf("cell %d lost sync", i)
		}
		got, err := cell.UnmarshalPayload(&p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data[0] != byte(i) {
			t.Fatalf("cell %d data corrupted", i)
		}
	}
}

func TestDigestDetectsTampering(t *testing.T) {
	client, relay := establish(t, 40)
	rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 1, Data: []byte("secret")}
	p, _ := rc.MarshalPayload()
	client.SealForward(&p)
	client.CryptForward(&p)
	relay.CryptForward(&p)
	// Flip a data byte post-decryption (as if an on-path attacker flipped
	// ciphertext; CTR bit-flips translate directly).
	p[100] ^= 0x01
	if relay.VerifyForward(&p) {
		t.Error("tampered cell verified")
	}
}

func TestVerifyFailureLeavesStateIntact(t *testing.T) {
	client, relay := establish(t, 50)
	// First, a garbage payload that fails verification...
	var junk [cell.PayloadLen]byte
	if relay.VerifyForward(&junk) {
		t.Fatal("junk verified")
	}
	// ...must not desynchronize the digest for subsequent real cells.
	rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 2, Data: []byte("after junk")}
	p, _ := rc.MarshalPayload()
	client.SealForward(&p)
	client.CryptForward(&p)
	relay.CryptForward(&p)
	if !relay.VerifyForward(&p) {
		t.Error("digest state corrupted by failed verification")
	}
}

func TestVerifyRestoresDigestField(t *testing.T) {
	_, relay := establish(t, 60)
	var p [cell.PayloadLen]byte
	p[5], p[6], p[7], p[8] = 0xAA, 0xBB, 0xCC, 0xDD
	if relay.VerifyForward(&p) {
		t.Fatal("junk verified")
	}
	if p[5] != 0xAA || p[8] != 0xDD {
		t.Error("failed verification did not restore digest field")
	}
}

func TestEncryptForwardRange(t *testing.T) {
	var cc CircuitCrypto
	var p [cell.PayloadLen]byte
	if err := cc.EncryptForward(0, &p); err == nil {
		t.Error("empty circuit should error")
	}
	c, _ := establish(t, 70)
	cc.AddHop(c)
	if err := cc.EncryptForward(1, &p); err == nil {
		t.Error("out-of-range hop should error")
	}
	if err := cc.EncryptForward(-1, &p); err == nil {
		t.Error("negative hop should error")
	}
}

func TestDecryptBackwardUnrecognized(t *testing.T) {
	var cc CircuitCrypto
	c, _ := establish(t, 80)
	cc.AddHop(c)
	var junk [cell.PayloadLen]byte
	junk[0] = byte(cell.RelayData)
	if _, err := cc.DecryptBackward(&junk); err == nil {
		t.Error("junk should not be recognized")
	}
}

func TestCloneHashIndependence(t *testing.T) {
	h := sha256.New()
	h.Write([]byte("prefix"))
	c := cloneHash(h)
	h.Write([]byte("a"))
	c.Write([]byte("b"))
	if bytes.Equal(h.Sum(nil), c.Sum(nil)) {
		t.Error("clone shares state with original")
	}
	c2 := cloneHash(h)
	if !bytes.Equal(h.Sum(nil), c2.Sum(nil)) {
		t.Error("fresh clone disagrees with original")
	}
}

func TestHKDFProperties(t *testing.T) {
	out1 := hkdf([]byte("secret"), []byte("salt"), []byte("info"), 64)
	out2 := hkdf([]byte("secret"), []byte("salt"), []byte("info"), 64)
	if !bytes.Equal(out1, out2) {
		t.Error("hkdf not deterministic")
	}
	if len(out1) != 64 {
		t.Errorf("length %d", len(out1))
	}
	if bytes.Equal(out1, hkdf([]byte("secret2"), []byte("salt"), []byte("info"), 64)) {
		t.Error("different secrets gave same output")
	}
	if bytes.Equal(out1[:32], hkdf([]byte("secret"), []byte("salt"), []byte("info2"), 32)) {
		t.Error("different info gave same output")
	}
	// Prefix property: shorter request is a prefix of longer.
	if !bytes.Equal(out1[:16], hkdf([]byte("secret"), []byte("salt"), []byte("info"), 16)) {
		t.Error("hkdf prefix property violated")
	}
}

func TestHKDFLengthProperty(t *testing.T) {
	f := func(secret, salt, info []byte, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		return len(hkdf(secret, salt, info, n)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnionLayersLookRandom(t *testing.T) {
	// After layering, the ciphertext should share no long runs with the
	// plaintext — a sanity check that encryption actually happens.
	var cc CircuitCrypto
	for i := 0; i < 3; i++ {
		c, _ := establish(t, int64(90+i))
		cc.AddHop(c)
	}
	rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 3, Data: bytes.Repeat([]byte{0}, 400)}
	p, _ := rc.MarshalPayload()
	plain := p
	if err := cc.EncryptForward(2, &p); err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range p {
		if p[i] == plain[i] {
			same++
		}
	}
	// Random bytes match ~1/256 of the time; allow generous slack.
	if same > cell.PayloadLen/16 {
		t.Errorf("%d/%d bytes unchanged after onion encryption", same, cell.PayloadLen)
	}
}

func TestPublicKeyHelpers(t *testing.T) {
	var zero PublicKey
	if !zero.IsZero() {
		t.Error("zero key not IsZero")
	}
	id, err := NewIdentity(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	pk := id.Public()
	if pk.IsZero() {
		t.Error("real key IsZero")
	}
	if pk.String() == "" {
		t.Error("empty String()")
	}
	if _, err := pk.ecdh(); err != nil {
		t.Errorf("round-trip to ecdh.PublicKey failed: %v", err)
	}
}

func TestMultiHopRoundTripProperty(t *testing.T) {
	// Property: for any hop count 1..5, any target hop, and any payload,
	// forward onion encryption delivers exactly to the target hop (and to
	// no earlier hop), and the backward path returns to the client intact.
	seed := int64(0)
	f := func(hopsRaw, targetRaw uint8, data []byte) bool {
		seed++
		hops := int(hopsRaw)%5 + 1
		target := int(targetRaw) % hops
		if len(data) > cell.RelayDataLen {
			data = data[:cell.RelayDataLen]
		}
		var cc CircuitCrypto
		relays := make([]*HopState, hops)
		rnd := rand.New(rand.NewSource(seed))
		for i := range relays {
			id, err := NewIdentity(rnd)
			if err != nil {
				return false
			}
			ch, err := StartHandshake(id.Public(), rnd)
			if err != nil {
				return false
			}
			reply, rh, err := ServerHandshake(id, ch.Onionskin(), rnd)
			if err != nil {
				return false
			}
			clientHop, err := ch.Complete(reply)
			if err != nil {
				return false
			}
			cc.AddHop(clientHop)
			relays[i] = rh
		}

		rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 7, Data: data}
		p, err := rc.MarshalPayload()
		if err != nil {
			return false
		}
		if err := cc.EncryptForward(target, &p); err != nil {
			return false
		}
		for i := 0; i < target; i++ {
			relays[i].CryptForward(&p)
			if relays[i].VerifyForward(&p) {
				return false // early recognition
			}
		}
		relays[target].CryptForward(&p)
		if !relays[target].VerifyForward(&p) {
			return false
		}
		got, err := cell.UnmarshalPayload(&p)
		if err != nil || !bytes.Equal(got.Data, data) {
			return false
		}

		// Backward from the target hop.
		back := cell.RelayCell{Cmd: cell.RelayData, Stream: 7, Data: data}
		bp, err := back.MarshalPayload()
		if err != nil {
			return false
		}
		relays[target].SealBackward(&bp)
		for i := target; i >= 0; i-- {
			relays[i].CryptBackward(&bp)
		}
		hop, err := cc.DecryptBackward(&bp)
		if err != nil || hop != target {
			return false
		}
		gotBack, err := cell.UnmarshalPayload(&bp)
		return err == nil && bytes.Equal(gotBack.Data, data)
	}
	cfg := &quick.Config{MaxCount: 25} // handshakes are ~0.3ms each
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// twinHops derives two hop states from the same key schedule — the
// handshake's key generation is deliberately non-deterministic, so tests
// that need identical twins go straight to the KDF.
func twinHops(t *testing.T, label byte) (a, b *HopState) {
	t.Helper()
	secret := bytes.Repeat([]byte{label}, 64)
	ks := deriveKeys(secret)
	a, err := newHopState(ks)
	if err != nil {
		t.Fatal(err)
	}
	b, err = newHopState(ks)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestCryptForwardBatchMatchesSequential(t *testing.T) {
	// Twin states from one key schedule: one crypts sequentially and the
	// other in a batch, and the ciphertexts — and the keystream positions
	// afterwards — must agree.
	seqHop, batchHop := twinHops(t, 0x41)

	const n = 5
	var seq, batch [n][cell.PayloadLen]byte
	for k := 0; k < n; k++ {
		for i := range seq[k] {
			seq[k][i] = byte(k*31 + i)
		}
		batch[k] = seq[k]
	}

	ps := make([]*[cell.PayloadLen]byte, n)
	for k := range batch {
		ps[k] = &batch[k]
	}
	batchHop.CryptForwardBatch(ps)
	for k := range seq {
		seqHop.CryptForward(&seq[k])
	}
	for k := range seq {
		if seq[k] != batch[k] {
			t.Fatalf("payload %d: batch ciphertext differs from sequential", k)
		}
	}

	// The streams must stay aligned for whatever comes next — including a
	// single-payload batch (the fast path) against a plain crypt.
	var a, b [cell.PayloadLen]byte
	for i := range a {
		a[i] = byte(i ^ 0x5A)
	}
	b = a
	seqHop.CryptForward(&a)
	batchHop.CryptForwardBatch([]*[cell.PayloadLen]byte{&b})
	if a != b {
		t.Error("keystream positions diverged after batch crypt")
	}
}

func TestCryptForwardBatchEmpty(t *testing.T) {
	hop, other := twinHops(t, 0x42)
	hop.CryptForwardBatch(nil) // must not panic or advance the stream
	var p, q [cell.PayloadLen]byte
	q = p
	hop.CryptForward(&p)
	other.CryptForward(&q)
	if p != q {
		t.Error("empty batch advanced the keystream")
	}
}
