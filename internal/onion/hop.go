package onion

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding"
	"fmt"
	"hash"

	"ting/internal/cell"
)

// HopState holds the established symmetric state shared between a client
// and one hop of a circuit: AES-CTR keystreams in both directions plus
// running digests for relay-cell recognition. The client keeps one HopState
// per hop; the relay keeps the mirror-image state for each circuit.
//
// CTR keystreams advance as cells are processed, so both ends must process
// every relay cell in order — exactly Tor's discipline.
type HopState struct {
	fwd cipher.Stream
	bwd cipher.Stream
	// fwdDigest is the running hash over forward relay payloads addressed
	// to this hop (sealed by the client, verified by the relay); bwdDigest
	// is the reverse.
	fwdDigest hash.Hash
	bwdDigest hash.Hash
	// batchScratch backs CryptForwardBatch: payloads are gathered into one
	// contiguous buffer so the CTR keystream is generated in a single call.
	// Owned by whoever serializes forward crypto on this hop (the relay's
	// per-connection read loop), like the keystream itself.
	batchScratch []byte
}

func newHopState(ks keySchedule) (*HopState, error) {
	fwdBlock, err := aes.NewCipher(ks.kf)
	if err != nil {
		return nil, fmt.Errorf("onion: forward cipher: %w", err)
	}
	bwdBlock, err := aes.NewCipher(ks.kb)
	if err != nil {
		return nil, fmt.Errorf("onion: backward cipher: %w", err)
	}
	h := &HopState{
		fwd:       cipher.NewCTR(fwdBlock, ks.ivf),
		bwd:       cipher.NewCTR(bwdBlock, ks.ivb),
		fwdDigest: sha256.New(),
		bwdDigest: sha256.New(),
	}
	h.fwdDigest.Write(ks.df)
	h.bwdDigest.Write(ks.db)
	return h, nil
}

// CryptForward applies (or removes — CTR is an XOR) this hop's forward
// keystream over a cell payload in place.
func (h *HopState) CryptForward(p *[cell.PayloadLen]byte) { h.fwd.XORKeyStream(p[:], p[:]) }

// CryptBackward applies or removes this hop's backward keystream.
func (h *HopState) CryptBackward(p *[cell.PayloadLen]byte) { h.bwd.XORKeyStream(p[:], p[:]) }

// CryptForwardBatch applies the forward keystream to several payloads in
// order with one XORKeyStream call. CTR consumes keystream at byte
// granularity in processing order, so crypting the concatenation of the
// payloads is bit-identical to crypting each in sequence — the batch is
// purely a throughput optimization (one cipher setup amortized over the
// burst, full use of AES-NI pipelining on the long buffer).
//
// Callers must hold the same serialization they would for the equivalent
// sequence of CryptForward calls.
func (h *HopState) CryptForwardBatch(ps []*[cell.PayloadLen]byte) {
	if len(ps) == 1 {
		h.CryptForward(ps[0])
		return
	}
	need := len(ps) * cell.PayloadLen
	if cap(h.batchScratch) < need {
		h.batchScratch = make([]byte, need)
	}
	buf := h.batchScratch[:need]
	for i, p := range ps {
		copy(buf[i*cell.PayloadLen:], p[:])
	}
	h.fwd.XORKeyStream(buf, buf)
	for i, p := range ps {
		copy(p[:], buf[i*cell.PayloadLen:(i+1)*cell.PayloadLen])
	}
}

// SealForward computes and writes the digest for a plaintext relay payload
// addressed to this hop, committing it to the forward running hash. Call
// before layering on the encryption.
func (h *HopState) SealForward(p *[cell.PayloadLen]byte) { seal(h.fwdDigest, p) }

// SealBackward is the relay-side counterpart for cells it originates toward
// the client.
func (h *HopState) SealBackward(p *[cell.PayloadLen]byte) { seal(h.bwdDigest, p) }

// VerifyForward checks whether a decrypted payload is addressed to this hop
// (recognized field zero and digest valid). On success the running hash is
// advanced and the digest field left zeroed; on failure all state and the
// payload are restored so the cell can be passed on untouched.
func (h *HopState) VerifyForward(p *[cell.PayloadLen]byte) bool {
	return verify(&h.fwdDigest, p)
}

// VerifyBackward is the client-side counterpart for cells arriving from
// this hop.
func (h *HopState) VerifyBackward(p *[cell.PayloadLen]byte) bool {
	return verify(&h.bwdDigest, p)
}

func seal(d hash.Hash, p *[cell.PayloadLen]byte) {
	cell.ZeroDigest(p)
	d.Write(p[:])
	var tag [4]byte
	copy(tag[:], d.Sum(nil))
	cell.SetDigest(p, tag)
}

func verify(d *hash.Hash, p *[cell.PayloadLen]byte) bool {
	if !cell.PayloadRecognized(p) {
		return false
	}
	claimed := cell.ZeroDigest(p)
	probe := cloneHash(*d)
	probe.Write(p[:])
	var want [4]byte
	copy(want[:], probe.Sum(nil))
	if want != claimed {
		cell.SetDigest(p, claimed) // not ours: restore and leave state alone
		return false
	}
	*d = probe // commit
	return true
}

// cloneHash copies a running hash via its binary marshaling, which all
// stdlib hashes implement.
func cloneHash(h hash.Hash) hash.Hash {
	m, ok := h.(encoding.BinaryMarshaler)
	if !ok {
		panic("onion: hash does not support marshaling")
	}
	state, err := m.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("onion: marshal hash: %v", err))
	}
	fresh := sha256.New()
	if err := fresh.(encoding.BinaryUnmarshaler).UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("onion: unmarshal hash: %v", err))
	}
	return fresh
}

// CircuitCrypto is the client-side stack of hop states for one circuit.
type CircuitCrypto struct {
	hops []*HopState
}

// AddHop appends an established hop (the newly extended-to relay).
func (cc *CircuitCrypto) AddHop(h *HopState) { cc.hops = append(cc.hops, h) }

// Len returns the number of established hops.
func (cc *CircuitCrypto) Len() int { return len(cc.hops) }

// EncryptForward seals a plaintext relay payload for the given hop index
// and applies the onion layers so the first hop's layer is outermost.
func (cc *CircuitCrypto) EncryptForward(hop int, p *[cell.PayloadLen]byte) error {
	if hop < 0 || hop >= len(cc.hops) {
		return fmt.Errorf("onion: hop %d out of range (circuit has %d)", hop, len(cc.hops))
	}
	cc.hops[hop].SealForward(p)
	for i := hop; i >= 0; i-- {
		cc.hops[i].CryptForward(p)
	}
	return nil
}

// DecryptBackward peels layers off an inbound payload until some hop
// recognizes it, returning that hop's index. The payload is left as the
// hop's plaintext (digest field zeroed).
func (cc *CircuitCrypto) DecryptBackward(p *[cell.PayloadLen]byte) (int, error) {
	for i := range cc.hops {
		cc.hops[i].CryptBackward(p)
		if cc.hops[i].VerifyBackward(p) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("onion: inbound cell unrecognized by all %d hops", len(cc.hops))
}
