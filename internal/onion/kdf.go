package onion

import (
	"crypto/hmac"
	"crypto/sha256"
)

// hkdf implements HKDF-SHA256 (RFC 5869) extract-and-expand. The standard
// library gained crypto/hkdf only recently; this repo targets Go 1.22, so we
// carry the ~25 lines ourselves.
func hkdf(secret, salt, info []byte, n int) []byte {
	// Extract.
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	// Expand.
	out := make([]byte, 0, n)
	var block []byte
	for counter := byte(1); len(out) < n; counter++ {
		h := hmac.New(sha256.New, prk)
		h.Write(block)
		h.Write(info)
		h.Write([]byte{counter})
		block = h.Sum(nil)
		out = append(out, block...)
	}
	return out[:n]
}

// Key schedule offsets within the HKDF output.
const (
	aesKeyLen    = 16
	digestSeed   = 32
	authKeyLen   = 32
	keyMaterial  = 2*aesKeyLen + 2*aesKeyLen /* IVs */ + 2*digestSeed + authKeyLen
	protoID      = "mintor-ntor-x25519-sha256-1"
	authProtoMsg = protoID + ":server-auth"
)

// keySchedule splits HKDF output into the per-hop key material.
type keySchedule struct {
	kf, kb   []byte // AES-CTR keys, forward and backward
	ivf, ivb []byte // CTR initial counter blocks
	df, db   []byte // digest seeds
	auth     []byte // handshake authentication key
}

func deriveKeys(secretInput []byte) keySchedule {
	km := hkdf(secretInput, []byte(protoID+":salt"), []byte(protoID+":expand"), keyMaterial)
	var ks keySchedule
	ks.kf, km = km[:aesKeyLen], km[aesKeyLen:]
	ks.kb, km = km[:aesKeyLen], km[aesKeyLen:]
	ks.ivf, km = km[:aesKeyLen], km[aesKeyLen:]
	ks.ivb, km = km[:aesKeyLen], km[aesKeyLen:]
	ks.df, km = km[:digestSeed], km[digestSeed:]
	ks.db, km = km[:digestSeed], km[digestSeed:]
	ks.auth = km[:authKeyLen]
	return ks
}

func computeAuth(authKey []byte) [32]byte {
	h := hmac.New(sha256.New, authKey)
	h.Write([]byte(authProtoMsg))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
