// Package onion implements mintor's circuit cryptography: an ntor-style
// X25519 handshake, HKDF key derivation, and per-hop AES-CTR layer
// encryption with running-digest integrity, mirroring the parts of Tor's
// relay crypto that circuit construction and relay-cell recognition need.
//
// Ting depends on this being real layered cryptography (not a toy tag on a
// header) because its measurement traffic must be indistinguishable, hop by
// hop, from ordinary Tor traffic: each relay decrypts exactly one layer and
// learns only its predecessor and successor (§1).
package onion

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"
)

// KeyLen is the length of X25519 public keys and of the onionskin a CREATE
// cell carries.
const KeyLen = 32

// Identity is a relay's long-term onion key pair.
type Identity struct {
	priv *ecdh.PrivateKey
}

// NewIdentity generates a fresh identity from rnd (nil means crypto/rand).
func NewIdentity(rnd io.Reader) (*Identity, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	priv, err := ecdh.X25519().GenerateKey(rnd)
	if err != nil {
		return nil, fmt.Errorf("onion: generate identity: %w", err)
	}
	return &Identity{priv: priv}, nil
}

// Public returns the public onion key as published in relay descriptors.
func (id *Identity) Public() PublicKey {
	var pk PublicKey
	copy(pk[:], id.priv.PublicKey().Bytes())
	return pk
}

// PublicKey is a serialized X25519 public key.
type PublicKey [KeyLen]byte

// IsZero reports whether the key is unset.
func (pk PublicKey) IsZero() bool { return pk == PublicKey{} }

// String returns a short hex prefix for logs.
func (pk PublicKey) String() string {
	return fmt.Sprintf("%x…", pk[:4])
}

func (pk PublicKey) ecdh() (*ecdh.PublicKey, error) {
	k, err := ecdh.X25519().NewPublicKey(pk[:])
	if err != nil {
		return nil, fmt.Errorf("onion: bad public key: %w", err)
	}
	return k, nil
}
