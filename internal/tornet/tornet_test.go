package tornet

import (
	"math"
	"testing"
	"time"

	"ting/internal/directory"
	"ting/internal/echo"
	"ting/internal/geo"
	"ting/internal/inet"
)

// smallWorld builds a topology with deterministic, overridden RTTs so the
// overlay's timing can be checked exactly.
func smallWorld(t *testing.T, nRelays int) (*inet.Topology, inet.NodeID) {
	t.Helper()
	topo, err := inet.Generate(inet.Config{N: nRelays, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 39, Lon: -77}, 12)
	return topo, host
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	topo, host := smallWorld(t, 3)
	if _, err := Build(Config{Topology: topo, Host: inet.NodeID(999)}); err == nil {
		t.Error("bogus host accepted")
	}
	if _, err := Build(Config{Topology: topo, Host: host, RelayNodes: []inet.NodeID{host}}); err == nil {
		t.Error("host doubling as public relay accepted")
	}
	if _, err := Build(Config{Topology: topo, Host: host, RelayNodes: []inet.NodeID{999}}); err == nil {
		t.Error("bogus relay node accepted")
	}
}

func TestRegistryContents(t *testing.T) {
	topo, host := smallWorld(t, 4)
	n, err := Build(Config{Topology: topo, Host: host, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Registry.Len() != 4 {
		t.Errorf("published relays = %d, want 4", n.Registry.Len())
	}
	// w and z resolvable but unpublished.
	for _, name := range []string{WName, ZName} {
		if _, ok := n.Registry.Lookup(name); !ok {
			t.Errorf("%s not resolvable", name)
		}
	}
	for _, d := range n.Registry.Consensus() {
		if d.Nickname == WName || d.Nickname == ZName {
			t.Errorf("local relay %s leaked into consensus", d.Nickname)
		}
	}
	if _, ok := n.NodeName(host); !ok {
		t.Error("host node has no relay name")
	}
}

// circuitPath builds a descriptor path by nickname.
func circuitPath(t *testing.T, n *Net, names ...string) []*directory.Descriptor {
	t.Helper()
	out := make([]*directory.Descriptor, 0, len(names))
	for _, name := range names {
		d, ok := n.Registry.Lookup(name)
		if !ok {
			t.Fatalf("relay %s unknown", name)
		}
		out = append(out, d)
	}
	return out
}

func TestFullCircuitEchoLatency(t *testing.T) {
	topo, host := smallWorld(t, 3)
	// Exact RTTs for the path host→w(host)→x→y→z(host)→echo(host):
	x, y := inet.NodeID(0), inet.NodeID(1)
	topo.OverrideRTT(host, x, 40)
	topo.OverrideRTT(x, y, 60)
	topo.OverrideRTT(y, host, 50)

	n, err := Build(Config{Topology: topo, Host: host, TimeScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	xName, _ := n.NodeName(x)
	yName, _ := n.NodeName(y)
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, WName, xName, yName, ZName))
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream(EchoTarget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	min, err := echo.NewClient(st).MinRTT(5)
	if err != nil {
		t.Fatal(err)
	}
	got := n.VirtualMs(min)
	want := 0.05 + 40 + 60 + 50 + 0.05 + 0.05 // the RTT sum along the circuit
	// Scheduling overhead only adds; allow a generous window.
	if got < want-1 || got > want+25 {
		t.Errorf("circuit RTT = %.1f virtual ms, want ≈ %.1f", got, want)
	}
}

func TestTimeScaleCompression(t *testing.T) {
	topo, host := smallWorld(t, 2)
	x := inet.NodeID(0)
	topo.OverrideRTT(host, x, 200)

	n, err := Build(Config{Topology: topo, Host: host, TimeScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	xName, _ := n.NodeName(x)
	start := time.Now()
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, WName, xName))
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	elapsed := time.Since(start)
	// Build needs 2 round trips over a 200ms-RTT path; compressed 20×
	// that's ~20ms. If the scale were ignored it would take ≥400ms.
	if elapsed > 300*time.Millisecond {
		t.Errorf("compressed build took %v", elapsed)
	}
	if n.VirtualMs(10*time.Millisecond) != 200 {
		t.Errorf("VirtualMs(10ms at 0.05) = %v, want 200", n.VirtualMs(10*time.Millisecond))
	}
}

func TestForwardDelaysIncreaseRTT(t *testing.T) {
	topo, host := smallWorld(t, 2)
	x := inet.NodeID(0)
	topo.OverrideRTT(host, x, 5)
	// A relay with a large deterministic floor.
	topo.Node(x).Fwd = inet.ForwardingModel{BaseMs: 30, QueueMeanMs: 0.001}

	n, err := Build(Config{Topology: topo, Host: host, TimeScale: 1.0, ForwardDelays: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	xName, _ := n.NodeName(x)
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, WName, xName))
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream(EchoTarget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rtt, err := echo.NewClient(st).Probe()
	if err != nil {
		t.Fatal(err)
	}
	got := n.VirtualMs(rtt)
	// Path RTT is 5+5+ε ms; x contributes 2×30ms of forwarding delay.
	if got < 65 {
		t.Errorf("RTT with forwarding delays = %.1f ms, want ≥ 65", got)
	}
}

func TestEchoLatencyFromExit(t *testing.T) {
	// The exit→echo leg must carry the exit↔host RTT, not be free.
	topo, host := smallWorld(t, 2)
	x := inet.NodeID(0)
	topo.OverrideRTT(host, x, 30)

	n, err := Build(Config{Topology: topo, Host: host, TimeScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	xName, _ := n.NodeName(x)
	// Circuit (w, x): x is the exit, so echo traffic crosses host↔x twice
	// per round trip (once inside the circuit, once on the exit stream).
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, WName, xName))
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream(EchoTarget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	min, err := echo.NewClient(st).MinRTT(3)
	if err != nil {
		t.Fatal(err)
	}
	got := n.VirtualMs(min)
	want := 30.0 + 30.0 // w→x→(echo at host) and back
	if math.Abs(got-want) > 15 {
		t.Errorf("exit echo RTT = %.1f, want ≈ %.1f", got, want)
	}
}

func TestExitPolicyOnlyEcho(t *testing.T) {
	topo, host := smallWorld(t, 2)
	n, err := Build(Config{Topology: topo, Host: host, TimeScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	xName, _ := n.NodeName(inet.NodeID(0))
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, WName, xName))
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	if _, err := circ.OpenStream("evil.example:80"); err == nil {
		t.Error("exit policy allowed a non-echo target")
	}
}

func TestTCPTransportEcho(t *testing.T) {
	topo, host := smallWorld(t, 2)
	x := inet.NodeID(0)
	topo.OverrideRTT(host, x, 20)
	n, err := Build(Config{Topology: topo, Host: host, TimeScale: 1.0, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	xName, _ := n.NodeName(x)
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, WName, xName))
	if err != nil {
		t.Fatal(err)
	}
	defer circ.Close()
	st, err := circ.OpenStream(EchoTarget)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	min, err := echo.NewClient(st).MinRTT(3)
	if err != nil {
		t.Fatal(err)
	}
	got := n.VirtualMs(min)
	// Over TCP the circuit (w, x) still pays host↔x twice per round trip.
	if got < 38 || got > 70 {
		t.Errorf("TCP-mode RTT = %.1f ms, want ≈ 40", got)
	}
}
