package tornet

import (
	"testing"
	"time"

	"ting/internal/faults"
	"ting/internal/geo"
	"ting/internal/inet"
)

// TestDrainRelayGracefulDeparture drains a relay carrying a live circuit:
// the circuit is DESTROYed, new circuits through the relay fail, and the
// consensus drops it with an epoch bump — the orderly half of churn.
func TestDrainRelayGracefulDeparture(t *testing.T) {
	n := faultOverlay(t, faults.NewPlan(71))
	var names []string
	for i := 0; i < 3; i++ {
		name, _ := n.NodeName(inet.NodeID(i))
		names = append(names, name)
	}
	victim := names[1]
	epoch0 := n.Registry.Epoch()

	circ, err := n.Client.BuildCircuit(circuitPath(t, n, names...))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := circ.OpenStream(EchoTarget); err != nil {
		t.Fatal(err)
	} else if _, err := st.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}

	path := circuitPath(t, n, names...) // resolve before the consensus drops the victim
	if !n.DrainRelay(victim) {
		t.Fatalf("DrainRelay(%s) found no relay", victim)
	}
	if _, ok := n.Registry.Lookup(victim); ok {
		t.Error("drained relay still in the registry")
	}
	if got := n.Registry.Epoch(); got != epoch0+1 {
		t.Errorf("epoch = %d after drain, want %d", got, epoch0+1)
	}
	// The courtesy DESTROYs must kill the live circuit within the teardown
	// window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := circ.OpenStream(EchoTarget); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit through drained relay still carries streams")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := n.Client.BuildCircuit(path); err == nil {
		t.Error("circuit rebuilt through a drained relay")
	}
	if n.DrainRelay(victim) {
		t.Error("second drain of the same relay reported success")
	}
}

// TestAddRelayJoinsConsensus starts a held-out topology node at runtime:
// the consensus grows by one epoch and circuits through the newcomer work.
func TestAddRelayJoinsConsensus(t *testing.T) {
	topo, err := inet.Generate(inet.Config{N: 3, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 51, Lon: 0}, 73)
	// Hold node 2 out of the initial overlay with a far-future join, then
	// bring it up manually.
	late := topo.Node(2).Name
	plan := faults.NewPlan(74)
	plan.SetRelay(late, faults.RelaySchedule{JoinAfter: time.Hour})
	n, err := Build(Config{Topology: topo, Host: host, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, ok := n.Registry.Lookup(late); ok {
		t.Fatal("held-out relay already in the consensus")
	}
	epoch0 := n.Registry.Epoch()

	if err := n.AddRelay(late, 2); err != nil {
		t.Fatal(err)
	}
	if got := n.Registry.Epoch(); got != epoch0+1 {
		t.Errorf("epoch = %d after join, want %d", got, epoch0+1)
	}
	if err := n.AddRelay(late, 2); err == nil {
		t.Error("duplicate AddRelay succeeded")
	}
	a, _ := n.NodeName(0)
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, a, late))
	if err != nil {
		t.Fatalf("circuit through the joined relay: %v", err)
	}
	circ.Close()
}

// TestFaultPlanJoinDrainSchedule lets the plan's JoinAfter and DrainAfter
// timers drive churn end to end: the joiner appears in the consensus, the
// leaver departs, each bumping the epoch.
func TestFaultPlanJoinDrainSchedule(t *testing.T) {
	topo, err := inet.Generate(inet.Config{N: 4, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 51, Lon: 0}, 76)
	joiner := topo.Node(2).Name
	leaver := topo.Node(3).Name
	plan := faults.NewPlan(77)
	plan.SetRelay(joiner, faults.RelaySchedule{JoinAfter: 30 * time.Millisecond})
	plan.SetRelay(leaver, faults.RelaySchedule{DrainAfter: 60 * time.Millisecond})
	n, err := Build(Config{Topology: topo, Host: host, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, ok := n.Registry.Lookup(joiner); ok {
		t.Fatal("JoinAfter relay published at build time")
	}
	epoch0 := n.Registry.Epoch()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, joined := n.Registry.Lookup(joiner)
		_, stillIn := n.Registry.Lookup(leaver)
		if joined && !stillIn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schedule never converged (joined=%v leaverGone=%v)", joined, !stillIn)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.Registry.Epoch(); got != epoch0+2 {
		t.Errorf("epoch = %d after join+drain, want %d", got, epoch0+2)
	}
	// The deltas since build tell the same story in order.
	deltas, ok := n.Registry.DeltasSince(epoch0)
	if !ok || len(deltas) != 2 {
		t.Fatalf("DeltasSince(%d) = (%v, %v), want the join and the leave", epoch0, deltas, ok)
	}
	if deltas[0].Name != joiner || deltas[1].Name != leaver {
		t.Errorf("deltas = [%s, %s], want [%s, %s]", deltas[0].Name, deltas[1].Name, joiner, leaver)
	}
}
