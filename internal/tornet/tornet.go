// Package tornet assembles a complete mintor overlay from a synthetic
// Internet topology: one relay per chosen node, link latencies injected
// from the ground-truth matrix, stochastic forwarding delays from each
// node's model, an echo destination, and a measurement host running the
// onion proxy plus Ting's two local relays w and z (§3.3).
//
// The overlay runs in-process over link.PipeNet by default, or over real
// loopback TCP sockets (Config.TCP); either way every latency a probe
// experiences is the one the topology prescribes, so full-stack Ting
// measurements can be validated against exact ground truth.
package tornet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"ting/internal/client"
	"ting/internal/directory"
	"ting/internal/echo"
	"ting/internal/faults"
	"ting/internal/inet"
	"ting/internal/link"
	"ting/internal/onion"
	"ting/internal/relay"
	"ting/internal/telemetry"
)

// EchoTarget is the destination name exit relays may connect to — the only
// target the restrictive exit policy allows, mirroring the paper's testbed
// policy (§4.1).
const EchoTarget = "echo"

// Local relay nicknames.
const (
	WName = "ting-w"
	ZName = "ting-z"
)

// Config configures an overlay build.
type Config struct {
	// Topology supplies nodes, ground-truth RTTs, and forwarding models.
	// Required.
	Topology *inet.Topology
	// RelayNodes selects which topology nodes run relays; nil means all.
	RelayNodes []inet.NodeID
	// Host is the measurement-host node (usually added with
	// Topology.AddHost). It runs the onion proxy, the echo pair, and the
	// local relays w and z. Required.
	Host inet.NodeID
	// TimeScale maps virtual milliseconds to wall-clock time; 1.0 (the
	// default) means 1 virtual ms = 1 real ms, 0.1 compresses time 10×.
	TimeScale float64
	// ForwardDelays enables per-cell stochastic forwarding delays at
	// relays. Off, relays forward at loopback speed (useful for protocol
	// tests).
	ForwardDelays bool
	// Seed drives forwarding-delay sampling.
	Seed int64
	// Timeout is the client protocol timeout. Default 30s.
	Timeout time.Duration
	// TCP switches relay links from in-process pipes to real loopback TCP
	// sockets. Latency injection is identical; this mode proves the stack
	// runs over a real network and backs cmd/tingnet.
	TCP bool
	// Faults, if non-nil, injects the plan's failures into the overlay:
	// every inter-node link is wrapped with the plan's drop/stall/reset
	// rules (a reset tears down the whole delayed path, as a mid-route
	// failure would), dials to Down relays are refused, and relays with a
	// CrashAfter schedule are killed for real — their listeners close and
	// DESTROY propagation runs through the live circuit machinery. The
	// plan's clock starts when Build returns.
	Faults *faults.Plan
	// Telemetry, if non-nil, is handed to every relay, the onion proxy,
	// and the fault plan, so one registry observes the whole overlay.
	Telemetry *telemetry.Registry
}

// Net is a running overlay.
type Net struct {
	cfg      Config
	pn       *link.PipeNet
	Registry *directory.Registry
	Client   *client.Client

	// mu guards the relay maps below: the overlay mutates at runtime now
	// (AddRelay/DrainRelay/RemoveRelay), and dial paths read the maps
	// concurrently with churn.
	mu          sync.RWMutex
	relays      []*relay.Relay
	relayByName map[string]*relay.Relay
	names       map[inet.NodeID]string // node → nickname of its public relay (or first local)
	nodeByAddr  map[string]inet.NodeID // relay address → node
	nameByAddr  map[string]string      // relay address → nickname, for fault-rule lookup

	timers    []*time.Timer // crash/join/drain schedules from the fault plan
	closeOnce sync.Once
}

// Build constructs and starts the overlay.
func Build(cfg Config) (*Net, error) {
	if cfg.Topology == nil {
		return nil, errors.New("tornet: config missing Topology")
	}
	if cfg.Topology.Node(cfg.Host) == nil {
		return nil, fmt.Errorf("tornet: host node %d not in topology", cfg.Host)
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1.0
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	nodes := cfg.RelayNodes
	if nodes == nil {
		for i := 0; i < cfg.Topology.N(); i++ {
			if inet.NodeID(i) != cfg.Host {
				nodes = append(nodes, inet.NodeID(i))
			}
		}
	}

	n := &Net{
		cfg:         cfg,
		pn:          link.NewPipeNet(),
		Registry:    directory.NewRegistry(),
		relayByName: make(map[string]*relay.Relay),
		names:       make(map[inet.NodeID]string),
		nodeByAddr:  make(map[string]inet.NodeID),
		nameByAddr:  make(map[string]string),
	}

	// Relays with a scheduled JoinAfter stay out of the initial overlay
	// and consensus; a timer brings them in later.
	var schedules map[string]faults.RelaySchedule
	if cfg.Faults != nil {
		schedules = cfg.Faults.Relays()
	}
	pendingJoins := make(map[string]inet.NodeID)

	// Public relays at their topology nodes.
	for _, id := range nodes {
		node := cfg.Topology.Node(id)
		if node == nil {
			n.Close()
			return nil, fmt.Errorf("tornet: relay node %d not in topology", id)
		}
		if id == cfg.Host {
			n.Close()
			return nil, errors.New("tornet: host node cannot also be a public relay")
		}
		if rs, ok := schedules[node.Name]; ok && rs.JoinAfter > 0 {
			pendingJoins[node.Name] = id
			continue
		}
		if err := n.addRelay(node.Name, id, node.Fwd, true); err != nil {
			n.Close()
			return nil, err
		}
	}
	// Ting's local relays w and z live on the host and stay unpublished,
	// like "PublishDescriptors 0" in the paper.
	local := inet.LocalForwardingModel()
	if err := n.addRelay(WName, cfg.Host, local, false); err != nil {
		n.Close()
		return nil, err
	}
	if err := n.addRelay(ZName, cfg.Host, local, false); err != nil {
		n.Close()
		return nil, err
	}

	cl, err := client.New(client.Config{
		Dialer:    n.dialerFrom(cfg.Host, cfg.Topology.Node(cfg.Host).Name),
		Timeout:   cfg.Timeout,
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		n.Close()
		return nil, err
	}
	n.Client = cl

	if cfg.Faults != nil {
		cfg.Faults.SetTelemetry(cfg.Telemetry)
		cfg.Faults.Begin()
		// Validate and collect first, then arm: no timer may fire while
		// Build still reads the relay maps unlocked.
		type event struct {
			after time.Duration
			fire  func()
		}
		var events []event
		for name, rs := range schedules {
			name := name
			_, running := n.relayByName[name]
			joinID, joining := pendingJoins[name]
			if (rs.CrashAfter > 0 || rs.DrainAfter > 0 || rs.JoinAfter > 0) && !running && !joining {
				n.Close()
				return nil, fmt.Errorf("tornet: fault plan schedules unknown relay %q", name)
			}
			if rs.JoinAfter > 0 {
				events = append(events, event{rs.JoinAfter, func() { _ = n.AddRelay(name, joinID) }})
			}
			if rs.CrashAfter > 0 {
				events = append(events, event{rs.CrashAfter, func() { n.CrashRelay(name) }})
			}
			if rs.DrainAfter > 0 {
				events = append(events, event{rs.DrainAfter, func() { n.DrainRelay(name) }})
			}
		}
		for _, ev := range events {
			n.timers = append(n.timers, time.AfterFunc(ev.after, ev.fire))
		}
	}
	return n, nil
}

// CrashRelay abruptly kills the named relay, as a machine failure would:
// its listener closes, every link it holds drops, and peers tear down the
// affected circuits with DESTROY propagation. If a fault plan is installed
// the relay is also marked Down there, so future dials are refused at the
// fault layer. Returns false for an unknown relay.
func (n *Net) CrashRelay(name string) bool {
	n.mu.RLock()
	r := n.relayByName[name]
	n.mu.RUnlock()
	if r == nil {
		return false
	}
	if n.cfg.Faults != nil {
		n.cfg.Faults.Crash(name)
	}
	n.cfg.Telemetry.Counter("tornet.relay_crashes").Inc()
	r.Close()
	return true
}

// AddRelay starts a relay at topology node id and publishes it, growing
// the consensus at runtime — the join half of churn. The node must exist
// in the topology; the nickname must not collide with a running relay.
func (n *Net) AddRelay(name string, id inet.NodeID) error {
	node := n.cfg.Topology.Node(id)
	if node == nil {
		return fmt.Errorf("tornet: join node %d not in topology", id)
	}
	if id == n.cfg.Host {
		return errors.New("tornet: host node cannot join as a public relay")
	}
	n.mu.RLock()
	_, running := n.relayByName[name]
	n.mu.RUnlock()
	if running {
		return fmt.Errorf("tornet: relay %q already running", name)
	}
	if err := n.addRelay(name, id, node.Fwd, true); err != nil {
		return err
	}
	n.cfg.Telemetry.Counter("tornet.relay_joins").Inc()
	return nil
}

// DrainRelay gracefully removes the named relay: it stops accepting
// CREATE/EXTEND and DESTROYs its live circuits (relay.Drain), leaves the
// consensus, then closes. Peers and mid-scan measurements observe an
// orderly departure instead of a crash. Returns false for an unknown
// relay.
func (n *Net) DrainRelay(name string) bool {
	r := n.takeRelay(name)
	if r == nil {
		return false
	}
	r.Drain()
	n.Registry.Remove(name)
	n.cfg.Telemetry.Counter("tornet.relay_drains").Inc()
	r.Close()
	return true
}

// RemoveRelay abruptly unpublishes and closes the named relay — a
// departure without the courtesy DESTROYs of DrainRelay. Returns false
// for an unknown relay.
func (n *Net) RemoveRelay(name string) bool {
	r := n.takeRelay(name)
	if r == nil {
		return false
	}
	n.Registry.Remove(name)
	n.cfg.Telemetry.Counter("tornet.relay_removes").Inc()
	r.Close()
	return true
}

// takeRelay detaches a relay from the by-name map so the nickname can be
// reused by a later join. The address maps keep their entries: dials to a
// gone relay fail at the link layer, as they would for a vanished host.
func (n *Net) takeRelay(name string) *relay.Relay {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.relayByName[name]
	if r != nil {
		delete(n.relayByName, name)
	}
	return r
}

// addRelay starts one relay whose network position is node id.
func (n *Net) addRelay(name string, id inet.NodeID, fwd inet.ForwardingModel, publish bool) error {
	identity, err := onion.NewIdentity(nil)
	if err != nil {
		return err
	}
	var ln link.Listener
	if n.cfg.TCP {
		ln, err = link.ListenTCP("127.0.0.1:0")
	} else {
		ln, err = n.pn.Listen(name)
	}
	if err != nil {
		return err
	}
	dialAddr := ln.Addr()
	var fwdFn func() time.Duration
	if n.cfg.ForwardDelays {
		rng := rand.New(rand.NewSource(n.cfg.Seed ^ int64(id)<<16 ^ int64(len(name))))
		var mu sync.Mutex
		fwdFn = func() time.Duration {
			mu.Lock()
			ms := fwd.Sample(rng)
			mu.Unlock()
			return n.scale(ms)
		}
	}
	cfg := relay.Config{
		Nickname:     name,
		Addr:         dialAddr,
		Identity:     identity,
		Listener:     ln,
		RelayDialer:  n.dialerFrom(id, name),
		ExitDialer:   &exitDialer{n: n, from: id},
		ExitPolicy:   func(target string) bool { return target == EchoTarget },
		ForwardDelay: fwdFn,
		Telemetry:    n.cfg.Telemetry,
	}
	r, err := relay.New(cfg)
	if err != nil {
		return err
	}
	r.Start()
	n.mu.Lock()
	n.relays = append(n.relays, r)
	n.relayByName[name] = r
	n.nodeByAddr[dialAddr] = id
	n.nameByAddr[dialAddr] = name
	if _, taken := n.names[id]; !taken {
		n.names[id] = name
	}
	n.mu.Unlock()

	bw := 1000.0
	if node := n.cfg.Topology.Node(id); node != nil {
		bw = node.BandwidthKBps
	}
	desc := &directory.Descriptor{
		Nickname: name, Addr: dialAddr, OnionKey: identity.Public(),
		BandwidthKBps: bw, Exit: true,
	}
	if publish {
		return n.Registry.Publish(desc)
	}
	return n.Registry.AddUnpublished(desc)
}

// scale converts virtual milliseconds to wall-clock duration.
func (n *Net) scale(ms float64) time.Duration {
	return time.Duration(ms * n.cfg.TimeScale * float64(time.Millisecond))
}

// VirtualMs converts a measured wall-clock duration back to virtual
// milliseconds.
func (n *Net) VirtualMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond) / n.cfg.TimeScale
}

// nodeOf maps a relay address back to its topology node.
func (n *Net) nodeOf(addr string) (inet.NodeID, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	id, ok := n.nodeByAddr[addr]
	return id, ok
}

// RelayByName returns the running relay with the given nickname, or nil.
// Tests and operational tooling use it to read relay statistics.
func (n *Net) RelayByName(name string) *relay.Relay {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.relayByName[name]
}

// NodeName returns the nickname of the relay at a node.
func (n *Net) NodeName(id inet.NodeID) (string, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	name, ok := n.names[id]
	return name, ok
}

// dialerFrom builds a link dialer whose connections carry the one-way
// latency between the caller's node and the target relay's node. fromName
// identifies the dialing endpoint in fault-plan rules. With a fault plan
// installed, dials to Down relays are refused and every link is wrapped
// with the plan's per-link faults beneath the latency injector.
func (n *Net) dialerFrom(from inet.NodeID, fromName string) link.Dialer {
	var inner link.Dialer = link.DialerFunc(func(addr string) (link.Link, error) {
		to, ok := n.nodeOf(addr)
		if !ok {
			return nil, fmt.Errorf("tornet: no relay at %q", addr)
		}
		var raw link.Link
		var err error
		if n.cfg.TCP {
			raw, err = link.TCPDialer{}.Dial(addr)
		} else {
			raw, err = n.pn.Dial(addr)
		}
		if err != nil {
			return nil, err
		}
		oneWay := n.scale(n.cfg.Topology.RTT(from, to) / 2)
		return link.Delayed(raw, oneWay, oneWay), nil
	})
	if n.cfg.Faults != nil {
		// The fault wrapper sits outside Delayed: a reset or drop decided
		// at send time closes the whole delayed link, exactly like a path
		// failing under traffic.
		inner = n.cfg.Faults.WrapDialer(inner, fromName, func(addr string) string {
			n.mu.RLock()
			name, ok := n.nameByAddr[addr]
			n.mu.RUnlock()
			if ok {
				return name
			}
			return addr
		})
	}
	return inner
}

// exitDialer opens the exit-side connection to the echo destination, which
// lives at the measurement host; the connection carries the exit↔host
// latency.
type exitDialer struct {
	n    *Net
	from inet.NodeID
}

func (e *exitDialer) DialStream(target string) (io.ReadWriteCloser, error) {
	if target != EchoTarget {
		return nil, fmt.Errorf("tornet: unknown stream target %q", target)
	}
	a, b := net.Pipe()
	go echo.Handle(b)
	oneWay := e.n.scale(e.n.cfg.Topology.RTT(e.from, e.n.cfg.Host) / 2)
	return link.DelayedRW(a, oneWay, oneWay), nil
}

// Close stops every relay and cancels pending fault-plan timers.
func (n *Net) Close() {
	n.closeOnce.Do(func() {
		for _, t := range n.timers {
			t.Stop()
		}
		n.mu.RLock()
		relays := append([]*relay.Relay(nil), n.relays...)
		n.mu.RUnlock()
		for _, r := range relays {
			r.Close()
		}
	})
}
