package tornet

import (
	"strings"
	"testing"
	"time"

	"ting/internal/faults"
	"ting/internal/geo"
	"ting/internal/inet"
)

// faultOverlay builds a small overlay with a fault plan installed.
func faultOverlay(t *testing.T, plan *faults.Plan) *Net {
	t.Helper()
	topo, err := inet.Generate(inet.Config{N: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 51, Lon: 0}, 62)
	for i := 0; i < 3; i++ {
		topo.OverrideRTT(host, inet.NodeID(i), 4)
		for j := i + 1; j < 3; j++ {
			topo.OverrideRTT(inet.NodeID(i), inet.NodeID(j), 4)
		}
	}
	n, err := Build(Config{Topology: topo, Host: host, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

// TestCrashRelayTearsDownCircuits kills a mid-circuit relay and checks the
// failure is felt end to end: the neighbour's dead link makes it DESTROY the
// circuit back to the client, and the fault plan refuses future dials.
func TestCrashRelayTearsDownCircuits(t *testing.T) {
	plan := faults.NewPlan(63)
	n := faultOverlay(t, plan)
	var names []string
	for i := 0; i < 3; i++ {
		name, _ := n.NodeName(inet.NodeID(i))
		names = append(names, name)
	}
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, names...))
	if err != nil {
		t.Fatal(err)
	}
	st, err := circ.OpenStream(EchoTarget)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := st.Read(buf); err != nil {
		t.Fatal(err)
	}

	if !n.CrashRelay(names[1]) {
		t.Fatalf("CrashRelay(%s) found no relay", names[1])
	}
	if !plan.Down(names[1]) {
		t.Error("crashed relay not marked Down in the plan")
	}
	// The entry relay's link to the dead middle hop drops; DESTROY
	// propagation must kill the client's circuit within the teardown window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := circ.OpenStream(EchoTarget); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit through crashed relay still carries streams")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Rebuilding through the dead relay fails at the dial: its listener is
	// gone and the fault layer refuses the target.
	if _, err := n.Client.BuildCircuit(circuitPath(t, n, names...)); err == nil {
		t.Error("circuit rebuilt through a crashed relay")
	}
	if n.CrashRelay("no-such-relay") {
		t.Error("CrashRelay invented a relay")
	}
}

// TestFaultPlanCrashTimer lets the plan's CrashAfter schedule kill a relay
// for real, without any manual CrashRelay call.
func TestFaultPlanCrashTimer(t *testing.T) {
	topoNames := func(n *Net) (string, string, string) {
		a, _ := n.NodeName(0)
		b, _ := n.NodeName(1)
		c, _ := n.NodeName(2)
		return a, b, c
	}
	plan := faults.NewPlan(64)
	// The relay name is the topology node name, known before Build.
	topo, err := inet.Generate(inet.Config{N: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	victim := topo.Node(1).Name
	plan.SetRelay(victim, faults.RelaySchedule{CrashAfter: 30 * time.Millisecond})
	host := topo.AddHost("host", geo.Coord{Lat: 51, Lon: 0}, 62)
	n, err := Build(Config{Topology: topo, Host: host, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, b, c := topoNames(n)
	if b != victim {
		t.Fatalf("victim %s is not node 1's relay %s", victim, b)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !plan.Down(victim) {
		if time.Now().After(deadline) {
			t.Fatal("CrashAfter schedule never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := n.Client.BuildCircuit(circuitPath(t, n, a, b, c)); err == nil {
		t.Error("circuit built through a schedule-crashed relay")
	}
	// Unaffected relays still work.
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, a, c))
	if err != nil {
		t.Fatalf("healthy relays collateral damage: %v", err)
	}
	circ.Close()
}

func TestBuildRejectsUnknownCrashTarget(t *testing.T) {
	topo, err := inet.Generate(inet.Config{N: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	host := topo.AddHost("host", geo.Coord{Lat: 51, Lon: 0}, 62)
	plan := faults.NewPlan(65)
	plan.SetRelay("ghost", faults.RelaySchedule{CrashAfter: time.Millisecond})
	if _, err := Build(Config{Topology: topo, Host: host, Faults: plan}); err == nil ||
		!strings.Contains(err.Error(), "ghost") {
		t.Errorf("Build with unknown crash target = %v, want ghost error", err)
	}
}

// TestFaultPlanRefusesDials wires a DialFailProb=1 rule from the host to one
// relay: entry circuits to it must fail at the fault layer while other
// relays stay reachable.
func TestFaultPlanRefusesDials(t *testing.T) {
	topo, err := inet.Generate(inet.Config{N: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	blocked := topo.Node(0).Name
	host := topo.AddHost("host", geo.Coord{Lat: 51, Lon: 0}, 62)
	plan := faults.NewPlan(66)
	plan.SetLink("host", blocked, faults.LinkFaults{DialFailProb: 1})
	n, err := Build(Config{Topology: topo, Host: host, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.NodeName(0)
	b, _ := n.NodeName(1)
	c, _ := n.NodeName(2)
	if _, err := n.Client.BuildCircuit(circuitPath(t, n, a, b)); err == nil {
		t.Error("entry dial to blocked relay succeeded")
	}
	circ, err := n.Client.BuildCircuit(circuitPath(t, n, b, c))
	if err != nil {
		t.Fatalf("unblocked pair unreachable: %v", err)
	}
	circ.Close()
}
