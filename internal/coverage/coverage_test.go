package coverage

import (
	"math"
	"testing"
	"time"
)

func TestClassifyKnownNames(t *testing.T) {
	cases := map[string]HostClass{
		"":                                   Unknown,
		"vps123.linode.com":                  HostingClass,
		"ec2-52-1-2-3.amazonaws.com":         HostingClass,
		"ns3001.ovh.net":                     HostingClass,
		"srv1.your-server.de":                HostingClass,
		"host.leaseweb.com":                  HostingClass,
		"pool-96-225-12-34.comcast.net":      ResidentialClass,
		"dyn-12-34-56-78.dsl.t-ipconnect.de": ResidentialClass,
		"cable-1-2-3-4.virginm.net":          ResidentialClass,
		"12-34-56-78.cust.orange.fr":         ResidentialClass,
		"dhcp-123.someisp.example":           ResidentialClass, // keyword + digits
		"tor3.cs.uni-ka.edu":                 UniversityClass,
		"relay.mit.edu":                      UniversityClass,
		"static.example.org":                 Unknown,
		"mail.corporate.example":             Unknown,
		"pool.without.digits.example":        Unknown, // keyword but no digits
		"vps-9-9.digitalocean.com":           HostingClass,
		"PoOl-96-1-2-3.COMCAST.NET":          ResidentialClass, // case-insensitive
		"node1.cloudatcost.com":              HostingClass,
	}
	for name, want := range cases {
		if got := Classify(name); got != want {
			t.Errorf("Classify(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestHostClassString(t *testing.T) {
	if ResidentialClass.String() != "residential" || HostingClass.String() != "hosting" ||
		UniversityClass.String() != "university" || Unknown.String() != "unknown" {
		t.Error("class names wrong")
	}
}

func TestCount(t *testing.T) {
	names := []string{
		"", "",
		"pool-1-2-3-4.comcast.net",
		"vps1.linode.com",
		"tor.uni-xy.edu",
		"opaque.example",
	}
	c := Count(names)
	if c.NoRDNS != 2 || c.Residential != 1 || c.Hosting != 1 || c.University != 1 || c.Unknown != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.ResidentialFractionOfNamed(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("ResidentialFractionOfNamed = %v, want 0.25", got)
	}
	if (ClassCounts{}).ResidentialFractionOfNamed() != 0 {
		t.Error("empty counts fraction should be 0")
	}
}

func TestSynthesizeHistoryShape(t *testing.T) {
	snaps := SynthesizeHistory(HistoryConfig{Seed: 1, Days: 30, InitialRelays: 3000})
	if len(snaps) != 30 {
		t.Fatalf("%d snapshots", len(snaps))
	}
	if !snaps[0].Date.Equal(time.Date(2015, 2, 28, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("start date %v", snaps[0].Date)
	}
	if !snaps[1].Date.Equal(snaps[0].Date.AddDate(0, 0, 1)) {
		t.Error("snapshots not daily")
	}
	first, last := len(snaps[0].Relays), len(snaps[len(snaps)-1].Relays)
	if first != 3000 {
		t.Errorf("day-0 population %d", first)
	}
	if last <= first {
		t.Errorf("population did not grow: %d → %d", first, last)
	}
	for _, s := range snaps {
		u := s.Unique24s()
		if u <= 0 || u > len(s.Relays) {
			t.Fatalf("unique /24s %d vs %d relays", u, len(s.Relays))
		}
		// Hosting prefix sharing must pull /24s visibly below relay count.
		if float64(u) > 0.98*float64(len(s.Relays)) {
			t.Fatalf("no prefix clustering: %d /24s for %d relays", u, len(s.Relays))
		}
	}
}

func TestHistoryMatchesPaperScale(t *testing.T) {
	// Figure 18: 5426–6044 unique /24s with ~6400–7000 running relays.
	snaps := SynthesizeHistory(HistoryConfig{Seed: 2})
	pts := Summarize(snaps)
	if len(pts) != 60 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Relays < 6000 || p.Relays > 7500 {
			t.Errorf("%s: %d relays outside the paper's window", p.Date.Format("01-02"), p.Relays)
		}
		if p.Unique24s < 4800 || p.Unique24s > 6500 {
			t.Errorf("%s: %d /24s outside the paper's 5426–6044 regime", p.Date.Format("01-02"), p.Unique24s)
		}
		if p.Unique24s >= p.Relays {
			t.Errorf("%s: /24s ≥ relays", p.Date.Format("01-02"))
		}
	}
}

func TestHistoryChurnChangesMembership(t *testing.T) {
	snaps := SynthesizeHistory(HistoryConfig{Seed: 3, Days: 10, InitialRelays: 1000})
	first := map[string]bool{}
	for _, r := range snaps[0].Relays {
		first[r.Fingerprint] = true
	}
	lost := 0
	for _, r := range snaps[9].Relays {
		if !first[r.Fingerprint] {
			lost++
		}
	}
	if lost == 0 {
		t.Error("no churn over 10 days")
	}
}

func TestSynthesizedRDNSClassifiesBack(t *testing.T) {
	// The classifier applied to the synthetic corpus must recover the
	// paper's ~61% residential share of named relays.
	snaps := SynthesizeHistory(HistoryConfig{Seed: 4, Days: 1})
	names := make([]string, 0, len(snaps[0].Relays))
	for _, r := range snaps[0].Relays {
		names = append(names, r.RDNS)
	}
	c := Count(names)
	frac := c.ResidentialFractionOfNamed()
	t.Logf("classified residential fraction: %.3f (paper: 0.61)", frac)
	if math.Abs(frac-0.61) > 0.06 {
		t.Errorf("residential fraction %.3f, want ≈ 0.61", frac)
	}
	noRDNS := float64(c.NoRDNS) / float64(c.Total())
	if math.Abs(noRDNS-0.17) > 0.04 {
		t.Errorf("no-rDNS fraction %.3f, want ≈ 0.17", noRDNS)
	}
	if c.Hosting == 0 || c.University == 0 {
		t.Error("hosting/university classes missing from corpus")
	}
}

func TestSynthesisDeterministic(t *testing.T) {
	a := SynthesizeHistory(HistoryConfig{Seed: 5, Days: 3, InitialRelays: 200})
	b := SynthesizeHistory(HistoryConfig{Seed: 5, Days: 3, InitialRelays: 200})
	for d := range a {
		if len(a[d].Relays) != len(b[d].Relays) {
			t.Fatalf("day %d: different sizes", d)
		}
		for i := range a[d].Relays {
			if a[d].Relays[i] != b[d].Relays[i] {
				t.Fatalf("day %d relay %d differs", d, i)
			}
		}
	}
}

func TestPrefix24(t *testing.T) {
	r := RelayRecord{IP: [4]byte{10, 20, 30, 40}}
	if r.Prefix24() != "10.20.30" {
		t.Errorf("Prefix24 = %q", r.Prefix24())
	}
}

func TestGeographicCoverage(t *testing.T) {
	// §5.3: "Tor Metrics reported 77 countries with relays in November
	// 2014". A full-size synthetic snapshot should cover a comparable
	// spread, dominated by the usual heavy hosts.
	snaps := SynthesizeHistory(HistoryConfig{Seed: 6, Days: 1})
	s := snaps[0]
	countries := s.Countries()
	t.Logf("countries with relays: %d (paper: 77)", countries)
	if countries < 60 || countries > 85 {
		t.Errorf("country count %d outside the paper's regime", countries)
	}
	counts := s.CountryCounts()
	if len(counts) != countries {
		t.Errorf("CountryCounts has %d entries for %d countries", len(counts), countries)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i].Count > counts[i-1].Count {
			t.Fatal("CountryCounts not descending")
		}
	}
	// The familiar heavy hitters must dominate.
	top := map[string]bool{counts[0].Code: true, counts[1].Code: true, counts[2].Code: true}
	if !top["de"] && !top["us"] {
		t.Errorf("top-3 countries %v do not include de/us", counts[:3])
	}
	// And a long tail of small countries exists.
	small := 0
	for _, c := range counts {
		if c.Count <= 3 {
			small++
		}
	}
	if small < 10 {
		t.Errorf("only %d small-tail countries", small)
	}
}

func TestCountrySamplingDeterministic(t *testing.T) {
	tbl := newCountryTable()
	for _, x := range []int{0, 1, 500, 999999} {
		if tbl.pick(x) != tbl.pick(x) {
			t.Fatal("pick not deterministic")
		}
	}
	if (Snapshot{}).Countries() != 0 {
		t.Error("empty snapshot has countries")
	}
}

func TestMeasurementTargets(t *testing.T) {
	snaps := SynthesizeHistory(HistoryConfig{Seed: 7, Days: 1, InitialRelays: 3000})
	s := snaps[0]

	all := MeasurementTargets(s, TargetOptions{})
	if len(all) != s.Unique24s() {
		t.Errorf("targets %d != unique /24s %d", len(all), s.Unique24s())
	}
	seen := map[string]bool{}
	for _, r := range all {
		p := r.Prefix24()
		if seen[p] {
			t.Fatalf("prefix %s has two targets", p)
		}
		seen[p] = true
	}
	// Deterministic.
	again := MeasurementTargets(s, TargetOptions{})
	for i := range all {
		if all[i] != again[i] {
			t.Fatal("target selection not deterministic")
		}
	}

	res := MeasurementTargets(s, TargetOptions{ResidentialOnly: true})
	if len(res) == 0 {
		t.Fatal("no residential targets")
	}
	for _, r := range res {
		if Classify(r.RDNS) != ResidentialClass {
			t.Fatalf("non-residential target %q", r.RDNS)
		}
	}

	named := MeasurementTargets(s, TargetOptions{RequireRDNS: true})
	for _, r := range named {
		if r.RDNS == "" {
			t.Fatal("rDNS-less target despite RequireRDNS")
		}
	}

	capped := MeasurementTargets(s, TargetOptions{MaxTargets: 10})
	if len(capped) != 10 {
		t.Errorf("cap ignored: %d targets", len(capped))
	}

	rep := ReportTargets(res)
	if rep.Targets != len(res) || rep.Residential != len(res) {
		t.Errorf("report %+v inconsistent with %d residential targets", rep, len(res))
	}
	if rep.Countries < 10 {
		t.Errorf("residential targets cover only %d countries", rep.Countries)
	}
	if rep.Prefixes != len(res) {
		t.Errorf("report prefixes %d != targets %d", rep.Prefixes, len(res))
	}
}
