package coverage

import "sort"

// Geographic coverage, the first of §5.3's three dimensions: "Tor Metrics
// reported 77 countries with relays in November 2014." The synthetic
// history assigns each relay a country drawn from a Tor-like distribution:
// a few countries host most relays (DE, US, FR, NL…) with a long tail of
// single-relay countries.

// torCountryWeights approximates the 2015 relay-count-by-country shape:
// weights are relative; the long tail below gets weight 1 each.
var torCountryWeights = map[string]int{
	"de": 1200, "us": 1100, "fr": 700, "nl": 450, "ru": 300, "gb": 300,
	"se": 250, "ca": 230, "ch": 200, "at": 150, "it": 140, "fi": 120,
	"ro": 110, "cz": 100, "es": 95, "au": 90, "jp": 85, "pl": 80,
	"no": 70, "dk": 65, "ua": 60, "br": 55, "hu": 45, "be": 45,
	"lu": 40, "sg": 35, "hk": 30, "nz": 25, "ie": 25, "pt": 20,
	"gr": 20, "bg": 18, "lt": 15, "lv": 12, "ee": 12, "si": 10,
	"sk": 10, "hr": 8, "rs": 8, "md": 6, "is": 6, "tr": 6,
	"il": 6, "za": 5, "ar": 5, "cl": 4, "mx": 4, "in": 4,
	"kr": 4, "tw": 3, "th": 3, "my": 3, "id": 2, "ph": 2,
	"vn": 2, "co": 2, "pe": 2, "uy": 2, "cr": 2, "pa": 1,
	"ke": 1, "ng": 1, "eg": 1, "ma": 1, "tn": 1, "ge": 1,
	"am": 1, "kz": 1, "mn": 1, "np": 1, "lk": 1, "kh": 1,
	"bo": 1, "ec": 1, "py": 1, "do": 1, "jm": 1, "mt": 1, "cy": 1,
}

// countryTable is the cumulative-weight table used for sampling.
type countryTable struct {
	codes   []string
	cumSums []int
	total   int
}

func newCountryTable() *countryTable {
	t := &countryTable{}
	codes := make([]string, 0, len(torCountryWeights))
	for c := range torCountryWeights {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		t.total += torCountryWeights[c]
		t.codes = append(t.codes, c)
		t.cumSums = append(t.cumSums, t.total)
	}
	return t
}

func (t *countryTable) pick(x int) string {
	x = x % t.total
	i := sort.SearchInts(t.cumSums, x+1)
	return t.codes[i]
}

// Countries counts the distinct relay countries in a snapshot — the
// paper's geographic-coverage metric.
func (s Snapshot) Countries() int {
	seen := make(map[string]struct{})
	for _, r := range s.Relays {
		if r.Country != "" {
			seen[r.Country] = struct{}{}
		}
	}
	return len(seen)
}

// CountryCounts returns relay counts by country, descending.
type CountryCount struct {
	Code  string
	Count int
}

// CountryCounts tallies the snapshot's relays per country.
func (s Snapshot) CountryCounts() []CountryCount {
	m := make(map[string]int)
	for _, r := range s.Relays {
		if r.Country != "" {
			m[r.Country]++
		}
	}
	out := make([]CountryCount, 0, len(m))
	for c, n := range m {
		out = append(out, CountryCount{Code: c, Count: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Code < out[b].Code
	})
	return out
}
