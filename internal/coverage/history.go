package coverage

import (
	"fmt"
	"math/rand"
	"time"

	"ting/internal/inet"
)

// RelayRecord is one relay as seen in a consensus snapshot.
type RelayRecord struct {
	Fingerprint string
	IP          [4]byte
	RDNS        string // empty if the address has no reverse DNS
	Class       inet.Class
	// Country is the relay's ISO 3166-1 alpha-2 country code.
	Country string
}

// Prefix24 returns the relay's /24 prefix as "a.b.c".
func (r RelayRecord) Prefix24() string {
	return fmt.Sprintf("%d.%d.%d", r.IP[0], r.IP[1], r.IP[2])
}

// Snapshot is one day's consensus.
type Snapshot struct {
	Date   time.Time
	Relays []RelayRecord
}

// Unique24s counts distinct /24 prefixes in the snapshot.
func (s Snapshot) Unique24s() int {
	seen := make(map[string]struct{}, len(s.Relays))
	for _, r := range s.Relays {
		seen[r.Prefix24()] = struct{}{}
	}
	return len(seen)
}

// HistoryConfig parameterizes consensus-history synthesis.
type HistoryConfig struct {
	// Start is the first snapshot date; the paper's window starts
	// 2015-02-28.
	Start time.Time
	// Days is the number of daily snapshots (paper: ~60).
	Days int
	// InitialRelays is the population on day one (paper: ~6400 running
	// relays). Default 6400.
	InitialRelays int
	// DailyChurn is the fraction of relays leaving (and a slightly larger
	// fraction joining, for net growth) each day. Default 0.02.
	DailyChurn float64
	// DailyGrowth is the net daily population growth rate. Default 0.0015
	// (≈ +9% over 60 days; the paper reports ~30% growth year over year).
	DailyGrowth float64
	// NoRDNSFraction is the fraction of relays without reverse DNS.
	// Default 0.17 (1150 of 6634 in the paper).
	NoRDNSFraction float64
	// ResidentialFraction of named relays. Default 0.61.
	ResidentialFraction float64
	// Seed drives the synthesis.
	Seed int64
}

func (c *HistoryConfig) setDefaults() {
	if c.Start.IsZero() {
		c.Start = time.Date(2015, 2, 28, 0, 0, 0, 0, time.UTC)
	}
	if c.Days == 0 {
		c.Days = 60
	}
	if c.InitialRelays == 0 {
		c.InitialRelays = 6400
	}
	if c.DailyChurn == 0 {
		c.DailyChurn = 0.02
	}
	if c.DailyGrowth == 0 {
		c.DailyGrowth = 0.0015
	}
	if c.NoRDNSFraction == 0 {
		c.NoRDNSFraction = 0.17
	}
	if c.ResidentialFraction == 0 {
		c.ResidentialFraction = 0.61
	}
}

// SynthesizeHistory builds a daily consensus history with churn. Relays
// get IPs whose /24 clustering matches their class: hosting providers pack
// many relays per prefix, while residential relays scatter — which is what
// makes the unique-/24 count (Figure 18) sit visibly below the relay
// count.
func SynthesizeHistory(cfg HistoryConfig) []Snapshot {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := newRelayGen(rng, cfg)

	pop := make([]RelayRecord, 0, cfg.InitialRelays)
	for i := 0; i < cfg.InitialRelays; i++ {
		pop = append(pop, gen.newRelay())
	}

	snaps := make([]Snapshot, 0, cfg.Days)
	for d := 0; d < cfg.Days; d++ {
		date := cfg.Start.AddDate(0, 0, d)
		cp := make([]RelayRecord, len(pop))
		copy(cp, pop)
		snaps = append(snaps, Snapshot{Date: date, Relays: cp})

		// Churn for the next day.
		kept := pop[:0]
		for _, r := range pop {
			if rng.Float64() >= cfg.DailyChurn {
				kept = append(kept, r)
			}
		}
		pop = kept
		target := int(float64(cfg.InitialRelays) * pow(1+cfg.DailyGrowth, d+1))
		for len(pop) < target {
			pop = append(pop, gen.newRelay())
		}
	}
	return snaps
}

func pow(base float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= base
	}
	return out
}

// relayGen synthesizes relays with class-appropriate IPs and rDNS names.
type relayGen struct {
	rng       *rand.Rand
	cfg       HistoryConfig
	next      int
	countries *countryTable
	// hostingPrefixes is a small pool of /24s shared by hosting relays.
	hostingPrefixes [][3]byte
}

func newRelayGen(rng *rand.Rand, cfg HistoryConfig) *relayGen {
	g := &relayGen{rng: rng, cfg: cfg, countries: newCountryTable()}
	for i := 0; i < 600; i++ {
		g.hostingPrefixes = append(g.hostingPrefixes,
			[3]byte{byte(5 + rng.Intn(180)), byte(rng.Intn(256)), byte(rng.Intn(256))})
	}
	return g
}

func (g *relayGen) newRelay() RelayRecord {
	g.next++
	r := RelayRecord{
		Fingerprint: fmt.Sprintf("FP%08d", g.next),
		Country:     g.countries.pick(g.rng.Intn(1 << 30)),
	}
	noRDNS := g.rng.Float64() < g.cfg.NoRDNSFraction
	residential := g.rng.Float64() < g.cfg.ResidentialFraction
	switch {
	case residential:
		r.Class = inet.Residential
		// Residential relays scatter across many prefixes.
		r.IP = [4]byte{byte(60 + g.rng.Intn(150)), byte(g.rng.Intn(256)),
			byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254))}
		if !noRDNS {
			r.RDNS = g.residentialName(r.IP)
		}
	case g.rng.Float64() < 0.8:
		r.Class = inet.Datacenter
		if g.rng.Float64() < 0.5 {
			// Half the hosted relays share provider /24s; the rest land in
			// prefixes of their own, as with smaller VPS shops.
			p := g.hostingPrefixes[g.rng.Intn(len(g.hostingPrefixes))]
			r.IP = [4]byte{p[0], p[1], p[2], byte(1 + g.rng.Intn(254))}
		} else {
			r.IP = [4]byte{byte(5 + g.rng.Intn(180)), byte(g.rng.Intn(256)),
				byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254))}
		}
		if !noRDNS {
			r.RDNS = g.hostingName(r.IP)
		}
	default:
		r.Class = inet.University
		r.IP = [4]byte{byte(128 + g.rng.Intn(60)), byte(g.rng.Intn(256)),
			byte(g.rng.Intn(256)), byte(1 + g.rng.Intn(254))}
		if !noRDNS {
			r.RDNS = fmt.Sprintf("tor%d.cs.uni-%c%c.edu", g.next%97,
				'a'+rune(g.rng.Intn(26)), 'a'+rune(g.rng.Intn(26)))
		}
	}
	return r
}

func (g *relayGen) residentialName(ip [4]byte) string {
	suffix := residentialSuffixes[g.rng.Intn(len(residentialSuffixes))]
	styles := []string{
		"pool-%d-%d-%d-%d.%s",
		"dyn-%d-%d-%d-%d.dsl.%s",
		"cable-%d-%d-%d-%d.%s",
		"%d-%d-%d-%d.cust.%s",
	}
	style := styles[g.rng.Intn(len(styles))]
	return fmt.Sprintf(style, ip[0], ip[1], ip[2], ip[3], suffix)
}

func (g *relayGen) hostingName(ip [4]byte) string {
	domain := hostingDomains[g.rng.Intn(len(hostingDomains))]
	return fmt.Sprintf("vps-%d-%d.%s", ip[2], ip[3], domain)
}

// HistoryPoint is one Figure 18 data point.
type HistoryPoint struct {
	Date      time.Time
	Relays    int
	Unique24s int
}

// Summarize turns snapshots into Figure 18's two series.
func Summarize(snaps []Snapshot) []HistoryPoint {
	out := make([]HistoryPoint, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, HistoryPoint{Date: s.Date, Relays: len(s.Relays), Unique24s: s.Unique24s()})
	}
	return out
}
