package coverage

import (
	"sort"
)

// Measurement-target selection for "Ting as a measurement platform"
// (§5.3): to measure latency between *networks* rather than relays, pick
// one representative relay per /24 prefix. The paper's pitch is exactly
// this — "the Tor node representing a prefix is a member of that prefix" —
// which is Ting's accuracy advantage over King's better-connected
// resolvers.

// TargetOptions filters target selection.
type TargetOptions struct {
	// ResidentialOnly keeps only relays whose reverse DNS classifies as
	// residential — the population the paper highlights as otherwise
	// unmeasurable ("unique insight into measurements within residential
	// networks", §6).
	ResidentialOnly bool
	// RequireRDNS drops relays without a reverse DNS name.
	RequireRDNS bool
	// MaxTargets caps the result size (0 = unlimited).
	MaxTargets int
}

// MeasurementTargets returns one relay per /24 prefix from the snapshot,
// deterministically (lowest fingerprint wins), subject to opts.
func MeasurementTargets(s Snapshot, opts TargetOptions) []RelayRecord {
	best := make(map[string]RelayRecord)
	for _, r := range s.Relays {
		if opts.RequireRDNS && r.RDNS == "" {
			continue
		}
		if opts.ResidentialOnly && Classify(r.RDNS) != ResidentialClass {
			continue
		}
		p := r.Prefix24()
		cur, ok := best[p]
		if !ok || r.Fingerprint < cur.Fingerprint {
			best[p] = r
		}
	}
	out := make([]RelayRecord, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Fingerprint < out[b].Fingerprint })
	if opts.MaxTargets > 0 && len(out) > opts.MaxTargets {
		out = out[:opts.MaxTargets]
	}
	return out
}

// CoverageReport summarizes what a target set reaches.
type CoverageReport struct {
	Targets     int
	Prefixes    int
	Countries   int
	Residential int
}

// ReportTargets computes coverage statistics over a target set.
func ReportTargets(targets []RelayRecord) CoverageReport {
	prefixes := make(map[string]struct{})
	countries := make(map[string]struct{})
	rep := CoverageReport{Targets: len(targets)}
	for _, r := range targets {
		prefixes[r.Prefix24()] = struct{}{}
		if r.Country != "" {
			countries[r.Country] = struct{}{}
		}
		if Classify(r.RDNS) == ResidentialClass {
			rep.Residential++
		}
	}
	rep.Prefixes = len(prefixes)
	rep.Countries = len(countries)
	return rep
}
