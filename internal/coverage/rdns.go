// Package coverage implements the measurement-platform study of §5.3:
// how much of the Internet the Tor relay population lets Ting reach. It
// synthesizes a consensus history with relay churn (the paper used Tor
// Metrics archives from Feb 28 to Apr 28, 2015), counts unique /24
// prefixes (Figure 18), and classifies relays as residential or hosted by
// their reverse-DNS names, extending the Schulman–Spring technique to
// European ISPs as the paper does.
package coverage

import (
	"strings"
)

// HostClass is a reverse-DNS-based classification.
type HostClass int

// Classifications.
const (
	Unknown HostClass = iota
	ResidentialClass
	HostingClass
	UniversityClass
)

// String names the class.
func (c HostClass) String() string {
	switch c {
	case ResidentialClass:
		return "residential"
	case HostingClass:
		return "hosting"
	case UniversityClass:
		return "university"
	default:
		return "unknown"
	}
}

// hostingDomains are the hosting-site suffixes the paper identifies by
// reverse DNS (§5.3), plus a few synonyms.
var hostingDomains = []string{
	"linode.com", "amazonaws.com", "ovh.com", "ovh.net", "cloudatcost.com",
	"your-server.de", "leaseweb.com", "digitalocean.com", "hetzner.de",
	"vultr.com", "online.net", "serverprofi24.de",
}

// residentialSuffixes mark consumer ISPs in the US and Europe; the
// original technique covered only the US, and the paper extends it to
// Europe.
var residentialSuffixes = []string{
	// US
	"comcast.net", "verizon.net", "rr.com", "cox.net", "charter.com",
	"qwest.net", "att.net", "sbcglobal.net", "frontiernet.net",
	// Europe
	"t-ipconnect.de", "t-dialin.net", "orange.fr", "proxad.net",
	"bbox.fr", "telecomitalia.it", "virginm.net", "btcentralplus.com",
	"ziggo.nl", "upc.nl", "telia.com", "skbroadband.com", "vodafone.de",
	"kabel-deutschland.de", "telefonica.de", "wanadoo.fr", "numericable.fr",
	"bredband.net", "chello.at", "swisscom.ch",
}

// residentialKeywords appear inside consumer-line hostnames.
var residentialKeywords = []string{
	"pool", "dsl", "dyn", "dialup", "cable", "dhcp", "ppp", "cust",
	"client", "broadband", "fttx", "fiber", "docsis", "res", "home",
}

var universityKeywords = []string{".edu", "uni-", ".ac.", "univ"}

// Classify assigns a class to a reverse-DNS name. Empty names are
// Unknown — the paper notes 1150 of 6634 relays had no reverse DNS.
func Classify(rdns string) HostClass {
	if rdns == "" {
		return Unknown
	}
	name := strings.ToLower(strings.TrimSuffix(rdns, "."))
	for _, d := range hostingDomains {
		if name == d || strings.HasSuffix(name, "."+d) {
			return HostingClass
		}
	}
	for _, k := range universityKeywords {
		if strings.Contains(name, k) {
			return UniversityClass
		}
	}
	suffixHit := false
	for _, s := range residentialSuffixes {
		if strings.HasSuffix(name, "."+s) || name == s {
			suffixHit = true
			break
		}
	}
	// The Schulman–Spring style signal: a consumer suffix, or consumer
	// keywords combined with embedded numbers (pool-96-225-…, dyn123…).
	if suffixHit {
		return ResidentialClass
	}
	if hasDigit(name) {
		for _, k := range residentialKeywords {
			if strings.Contains(name, k) {
				return ResidentialClass
			}
		}
	}
	return Unknown
}

func hasDigit(s string) bool {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// ClassCounts tallies classifications over a set of rDNS names.
type ClassCounts struct {
	Residential int
	Hosting     int
	University  int
	Unknown     int
	NoRDNS      int
}

// Total returns the number of classified hosts.
func (c ClassCounts) Total() int {
	return c.Residential + c.Hosting + c.University + c.Unknown + c.NoRDNS
}

// ResidentialFractionOfNamed returns residential / (hosts with rDNS),
// the paper's "of the 5484 currently running Tor relays with a reverse
// DNS name, at least 3355, or roughly 61%, are residential".
func (c ClassCounts) ResidentialFractionOfNamed() float64 {
	named := c.Total() - c.NoRDNS
	if named == 0 {
		return 0
	}
	return float64(c.Residential) / float64(named)
}

// Count classifies every name ("" meaning no rDNS).
func Count(names []string) ClassCounts {
	var out ClassCounts
	for _, n := range names {
		if n == "" {
			out.NoRDNS++
			continue
		}
		switch Classify(n) {
		case ResidentialClass:
			out.Residential++
		case HostingClass:
			out.Hosting++
		case UniversityClass:
			out.University++
		default:
			out.Unknown++
		}
	}
	return out
}
