package pathsel

import (
	"math/rand"
	"testing"

	"ting/internal/ting"
)

func TestSelectLowLatency(t *testing.T) {
	m := worldMatrix(t, 30, 20)
	rng := rand.New(rand.NewSource(21))

	// Budget: the median of random 3-hop circuits.
	base, err := SampleCircuits(m, 3, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := MedianRTT(base)
	if err != nil {
		t.Fatal(err)
	}

	sel, err := SelectLowLatency(m, 4, budget, 500, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("no circuits selected")
	}
	for _, c := range sel {
		if c.RTTms > budget {
			t.Fatalf("selected circuit exceeds budget: %.1f > %.1f", c.RTTms, budget)
		}
		if len(c.Hops) != 4 {
			t.Fatalf("circuit has %d hops", len(c.Hops))
		}
		seen := map[int]bool{}
		for _, h := range c.Hops {
			if seen[h] {
				t.Fatal("repeated hop")
			}
			seen[h] = true
		}
	}
	med, err := MedianRTT(sel)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4-hop within 3-hop median budget %.0fms: %d circuits, median %.0fms", budget, len(sel), med)
	if med > budget {
		t.Errorf("median of selected (%.1f) above budget (%.1f)", med, budget)
	}
}

func TestSelectionEntropyStaysHigh(t *testing.T) {
	// The §5.2.2 concern: low-latency long circuits must not collapse onto
	// a few hub relays. Rejection sampling is uniform over qualifying
	// circuits, so entropy should stay near 1 for mid-range budgets.
	m := worldMatrix(t, 30, 22)
	rng := rand.New(rand.NewSource(23))
	base, _ := SampleCircuits(m, 3, 2000, rng)
	budget, _ := MedianRTT(base)

	sel, err := SelectLowLatency(m, 4, budget, 800, 400000, rng)
	if err != nil {
		t.Fatal(err)
	}
	h := SelectionEntropy(sel, 30)
	t.Logf("selection entropy: %.3f (1.0 = perfectly uniform)", h)
	if h < 0.85 {
		t.Errorf("entropy %.3f too low; selection collapses onto few relays", h)
	}
	// A degenerate selection must score low.
	degenerate := sel[:1]
	if SelectionEntropy(degenerate, 30) >= h {
		t.Error("single-circuit selection not lower-entropy than the full set")
	}
}

func TestSelectionEntropyEdges(t *testing.T) {
	if SelectionEntropy(nil, 10) != 0 {
		t.Error("empty selection entropy should be 0")
	}
	if SelectionEntropy([]CircuitSample{{Hops: []int{0}}}, 1) != 0 {
		t.Error("n=1 entropy should be 0")
	}
}

func TestSelectLowLatencyValidation(t *testing.T) {
	m := worldMatrix(t, 10, 24)
	rng := rand.New(rand.NewSource(25))
	if _, err := SelectLowLatency(nil, 3, 100, 1, 10, rng); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := SelectLowLatency(m, 3, 100, 0, 10, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SelectLowLatency(m, 3, 100, 10, 5, rng); err == nil {
		t.Error("attempts < k accepted")
	}
	if _, err := SelectLowLatency(m, 3, -5, 1, 10, rng); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := SelectLowLatency(m, 1, 100, 1, 10, rng); err == nil {
		t.Error("length 1 accepted")
	}
	// An impossible budget fails with a clear error.
	if _, err := SelectLowLatency(m, 3, 0.0001, 1, 50, rng); err == nil {
		t.Error("impossible budget produced circuits")
	}
}

func TestMedianRTTEmpty(t *testing.T) {
	if _, err := MedianRTT(nil); err == nil {
		t.Error("empty median accepted")
	}
	med, err := MedianRTT([]CircuitSample{{RTTms: 3}, {RTTms: 1}, {RTTms: 2}})
	if err != nil || med != 2 {
		t.Errorf("median = %v, %v", med, err)
	}
	med, _ = MedianRTT([]CircuitSample{{RTTms: 1}, {RTTms: 3}})
	if med != 2 {
		t.Errorf("even median = %v", med)
	}
}

// TestSelectLowLatencyConf pins the confidence floor on a matrix mixing
// measured and predicted cells: minConf 0 accepts everything, a floor
// above a predicted cell's confidence excludes circuits through it, and a
// floor above 1 is rejected outright.
func TestSelectLowLatencyConf(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	m, _ := ting.NewMatrix(names)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			m.Set(names[i], names[j], 10)
			m.SetProv(names[i], names[j], ting.ProvFresh)
		}
	}
	// The a—b cell becomes a low-confidence prediction.
	if err := m.SetPredicted("a", "b", 10, 0.4); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	all, err := SelectLowLatencyConf(m, 3, 100, 0, 50, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	usesAB := func(c CircuitSample) bool {
		for i := 0; i+1 < len(c.Hops); i++ {
			x, y := c.Hops[i], c.Hops[i+1]
			if (x == 0 && y == 1) || (x == 1 && y == 0) {
				return true
			}
		}
		return false
	}
	found := false
	for _, c := range all {
		if usesAB(c) {
			found = true
		}
	}
	if !found {
		t.Fatal("minConf 0 never sampled the predicted a—b hop; test world too small?")
	}

	strict, err := SelectLowLatencyConf(m, 3, 100, 0.5, 50, 5000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range strict {
		if usesAB(c) {
			t.Errorf("minConf 0.5 selected circuit %v through the 0.4-confidence cell", c.Hops)
		}
	}

	// A floor every predicted cell passes keeps the hop available.
	loose, err := SelectLowLatencyConf(m, 3, 100, 0.3, 50, 5000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, c := range loose {
		if usesAB(c) {
			found = true
		}
	}
	if !found {
		t.Error("minConf 0.3 excluded a 0.4-confidence cell")
	}

	if _, err := SelectLowLatencyConf(m, 3, 100, 1.5, 5, 100, rng); err == nil {
		t.Error("minConf > 1 accepted")
	}

	// SelectLowLatency delegates with minConf 0: identical seeds, identical
	// sample.
	a, err := SelectLowLatency(m, 3, 100, 10, 1000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectLowLatencyConf(m, 3, 100, 0, 10, 1000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("delegation drifted: %d vs %d circuits", len(a), len(b))
	}
	for i := range a {
		if a[i].RTTms != b[i].RTTms {
			t.Fatalf("delegation drifted at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
