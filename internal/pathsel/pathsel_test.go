package pathsel

import (
	"math"
	"math/rand"
	"testing"

	"ting/internal/inet"
	"ting/internal/stats"
	"ting/internal/ting"
)

func worldMatrix(t testing.TB, n int, seed int64) *ting.Matrix {
	t.Helper()
	topo, err := inet.Generate(inet.Config{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = topo.Node(inet.NodeID(i)).Name
	}
	m, err := ting.NewMatrix(names)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(names[i], names[j], topo.RTT(inet.NodeID(i), inet.NodeID(j)))
		}
	}
	return m
}

func TestFindTIVsHandCrafted(t *testing.T) {
	m, _ := ting.NewMatrix([]string{"a", "b", "c", "d"})
	// a—b direct 100; a—c 20, c—b 30 → detour 50: TIV with saving 50%.
	m.Set("a", "b", 100)
	m.Set("a", "c", 20)
	m.Set("c", "b", 30)
	// All other pairs metric (no TIVs through them).
	m.Set("a", "d", 200)
	m.Set("b", "d", 200)
	m.Set("c", "d", 195)

	tivs, err := FindTIVs(m)
	if err != nil {
		t.Fatal(err)
	}
	var ab *TIV
	for i := range tivs {
		if tivs[i].S == 0 && tivs[i].D == 1 {
			ab = &tivs[i]
		}
	}
	if ab == nil {
		t.Fatal("a—b TIV not found")
	}
	if ab.R != 2 || ab.DetourMs != 50 || ab.DirectMs != 100 {
		t.Errorf("TIV = %+v", ab)
	}
	if math.Abs(ab.SavingsFraction()-0.5) > 1e-12 {
		t.Errorf("savings = %v, want 0.5", ab.SavingsFraction())
	}
}

func TestFindTIVsNoneInMetricSpace(t *testing.T) {
	// A matrix derived from a metric (all pairs equal) has no TIVs.
	m, _ := ting.NewMatrix([]string{"a", "b", "c", "d"})
	for _, p := range [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}} {
		m.Set(p[0], p[1], 100)
	}
	tivs, err := FindTIVs(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(tivs) != 0 {
		t.Errorf("found %d TIVs in metric space", len(tivs))
	}
	if _, err := FindTIVs(nil); err == nil {
		t.Error("nil matrix accepted")
	}
}

func TestTIVDetourAlwaysBeatsDirect(t *testing.T) {
	m := worldMatrix(t, 40, 1)
	tivs, err := FindTIVs(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, tiv := range tivs {
		if tiv.DetourMs >= tiv.DirectMs {
			t.Fatalf("TIV %+v does not improve", tiv)
		}
		s := tiv.SavingsFraction()
		if s <= 0 || s >= 1 {
			t.Fatalf("savings %v out of (0,1)", s)
		}
	}
}

func TestTIVFractionMatchesPaper(t *testing.T) {
	// §5.2.1: 69% of pairs exhibit a TIV on the 50-node dataset. Our
	// synthetic Internet should put the fraction in the same regime.
	m := worldMatrix(t, 50, 2)
	sum, err := SummarizeTIVs(m)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != 50*49/2 {
		t.Errorf("pairs = %d", sum.Pairs)
	}
	frac := sum.FractionWithTIV()
	t.Logf("TIV fraction: %.3f (paper: 0.69)", frac)
	if frac < 0.45 || frac > 0.9 {
		t.Errorf("TIV fraction %.3f outside plausible band around 0.69", frac)
	}
	med, err := stats.Median(sum.Savings)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("median TIV saving: %.3f (paper: 0.075)", med)
	if med <= 0 || med > 0.5 {
		t.Errorf("median saving %.3f implausible", med)
	}
}

func TestTIVSummaryEmptyFraction(t *testing.T) {
	if (TIVSummary{}).FractionWithTIV() != 0 {
		t.Error("empty summary fraction should be 0")
	}
	tiv := TIV{DirectMs: 0, DetourMs: 0}
	if tiv.SavingsFraction() != 0 {
		t.Error("zero-direct TIV saving should be 0")
	}
}

func TestSampleCircuits(t *testing.T) {
	m := worldMatrix(t, 20, 3)
	rng := rand.New(rand.NewSource(4))
	circs, err := SampleCircuits(m, 5, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(circs) != 500 {
		t.Fatalf("%d circuits", len(circs))
	}
	for _, c := range circs {
		if len(c.Hops) != 5 {
			t.Fatalf("circuit has %d hops", len(c.Hops))
		}
		seen := map[int]bool{}
		var want float64
		for i, h := range c.Hops {
			if seen[h] {
				t.Fatalf("repeated hop in %v", c.Hops)
			}
			seen[h] = true
			if i > 0 {
				want += m.At(c.Hops[i-1], h)
			}
		}
		if math.Abs(c.RTTms-want) > 1e-9 {
			t.Fatalf("RTT %v != hop sum %v", c.RTTms, want)
		}
	}
}

func TestSampleCircuitsValidation(t *testing.T) {
	m := worldMatrix(t, 10, 5)
	rng := rand.New(rand.NewSource(6))
	if _, err := SampleCircuits(nil, 3, 10, rng); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := SampleCircuits(m, 1, 10, rng); err == nil {
		t.Error("length 1 accepted")
	}
	if _, err := SampleCircuits(m, 11, 10, rng); err == nil {
		t.Error("length > n accepted")
	}
	if _, err := SampleCircuits(m, 3, 0, rng); err == nil {
		t.Error("zero count accepted")
	}
}

func TestSampleCircuitsUniformCoverage(t *testing.T) {
	// Every node should appear with roughly equal frequency.
	m := worldMatrix(t, 10, 7)
	rng := rand.New(rand.NewSource(8))
	circs, err := SampleCircuits(m, 3, 6000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, c := range circs {
		for _, h := range c.Hops {
			counts[h]++
		}
	}
	want := 6000.0 * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.1 {
			t.Errorf("node %d appeared %d times, want ≈ %.0f", i, c, want)
		}
	}
}

func TestAnalyzeLengths(t *testing.T) {
	m := worldMatrix(t, 30, 9)
	lengths := []int{3, 5, 8}
	res, err := AnalyzeLengths(m, lengths, 2000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for i, lh := range res {
		if lh.Length != lengths[i] {
			t.Errorf("length order wrong: %d", lh.Length)
		}
		// Total scaled count must equal C(30, l).
		want := stats.Choose(30, lh.Length)
		if math.Abs(lh.Hist.Total()-want)/want > 1e-9 {
			t.Errorf("length %d: total %.3g, want C(30,%d)=%.3g",
				lh.Length, lh.Hist.Total(), lh.Length, want)
		}
		if len(lh.NodeProb) != len(lh.Hist.Counts) {
			t.Errorf("length %d: NodeProb has %d bins, hist %d",
				lh.Length, len(lh.NodeProb), len(lh.Hist.Counts))
		}
		for b, p := range lh.NodeProb {
			if p < 0 || p > 1 {
				t.Errorf("length %d bin %d: probability %v", lh.Length, b, p)
			}
		}
	}
	// Longer circuits reach higher max RTTs (Figure 16's fan-out).
	if len(res[2].Hist.Counts) <= len(res[0].Hist.Counts) {
		t.Error("8-hop histogram does not extend past 3-hop histogram")
	}
	if _, err := AnalyzeLengths(m, nil, 100, 1); err == nil {
		t.Error("empty lengths accepted")
	}
}

func TestLongerCircuitsOfferMoreChoices(t *testing.T) {
	// §5.2.2: in the 200–300ms band there are an order of magnitude more
	// 4-hop than 3-hop circuits (after C(n,l) scaling).
	m := worldMatrix(t, 50, 11)
	res, err := AnalyzeLengths(m, []int{3, 4}, 8000, 12)
	if err != nil {
		t.Fatal(err)
	}
	c3 := res[0].CircuitsWithin(200, 300)
	c4 := res[1].CircuitsWithin(200, 300)
	t.Logf("circuits in 200–300ms: 3-hop %.3g, 4-hop %.3g (ratio %.1f)", c3, c4, c4/c3)
	if c3 <= 0 {
		t.Skip("no 3-hop circuits in band for this seed")
	}
	if c4 < 3*c3 {
		t.Errorf("4-hop choices (%.3g) not ≫ 3-hop (%.3g)", c4, c3)
	}
}

func TestNodeProbEntropicMiddle(t *testing.T) {
	// Figure 17: per-length membership probability peaks at intermediate
	// RTTs and collapses at the extremes.
	m := worldMatrix(t, 30, 13)
	res, err := AnalyzeLengths(m, []int{4}, 8000, 14)
	if err != nil {
		t.Fatal(err)
	}
	probs := res[0].NodeProb
	var peak float64
	peakBin := 0
	for b, p := range probs {
		if p > peak {
			peak = p
			peakBin = b
		}
	}
	if peak <= 0 {
		t.Fatal("no positive probabilities")
	}
	if peakBin == 0 || peakBin == len(probs)-1 {
		t.Errorf("peak at extreme bin %d of %d", peakBin, len(probs))
	}
	if probs[len(probs)-1] >= peak/2 {
		t.Errorf("tail probability %.4g not well below peak %.4g", probs[len(probs)-1], peak)
	}
}

// TestFindTIVsPredictedCells pins the completed-matrix contract: a
// predicted *witness* leg can never manufacture a detour, while a
// predicted *direct* leg only flags the violation as a candidate.
func TestFindTIVsPredictedCells(t *testing.T) {
	build := func() *ting.Matrix {
		m, _ := ting.NewMatrix([]string{"a", "b", "c", "d"})
		// a—b direct 100; detour a—c—b = 50.
		m.Set("a", "b", 100)
		m.Set("a", "c", 20)
		m.Set("c", "b", 30)
		m.Set("a", "d", 200)
		m.Set("b", "d", 200)
		m.Set("c", "d", 195)
		for _, p := range [][2]string{{"a", "b"}, {"a", "c"}, {"c", "b"}, {"a", "d"}, {"b", "d"}, {"c", "d"}} {
			m.SetProv(p[0], p[1], ting.ProvFresh)
		}
		return m
	}
	find := func(m *ting.Matrix) *TIV {
		t.Helper()
		tivs, err := FindTIVs(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tivs {
			if tivs[i].S == 0 && tivs[i].D == 1 {
				return &tivs[i]
			}
		}
		return nil
	}

	// Fully measured: the a—b TIV exists unflagged.
	if tiv := find(build()); tiv == nil || tiv.Predicted {
		t.Fatalf("measured-world TIV = %+v, want unflagged detour", tiv)
	}

	// Predicted witness leg (a—c): the detour's evidence is a model guess,
	// so the candidate disappears entirely.
	m := build()
	if err := m.SetPredicted("a", "c", 20, 0.9); err != nil {
		t.Fatal(err)
	}
	if tiv := find(m); tiv != nil {
		t.Errorf("TIV %+v reported via predicted witness leg", tiv)
	}

	// The other witness leg (c—b) predicted: same exclusion.
	m = build()
	if err := m.SetPredicted("c", "b", 30, 0.9); err != nil {
		t.Fatal(err)
	}
	if tiv := find(m); tiv != nil {
		t.Errorf("TIV %+v reported via predicted witness leg c—b", tiv)
	}

	// Predicted direct leg: measured witnesses, so the violation is real
	// evidence — reported, but flagged.
	m = build()
	if err := m.SetPredicted("a", "b", 100, 0.9); err != nil {
		t.Fatal(err)
	}
	tiv := find(m)
	if tiv == nil || !tiv.Predicted {
		t.Fatalf("predicted-direct TIV = %+v, want flagged candidate", tiv)
	}
	if tiv.R != 2 || tiv.DetourMs != 50 {
		t.Errorf("flagged TIV = %+v, want detour via c at 50ms", tiv)
	}
}
