package pathsel

import (
	"errors"
	"fmt"
	"math/rand"

	"ting/internal/stats"
	"ting/internal/ting"
)

// CircuitSample is one sampled circuit of a given length.
type CircuitSample struct {
	Hops []int
	// RTTms is the sum of consecutive inter-hop RTTs.
	RTTms float64
}

// SampleCircuits draws count random circuits of the given length (distinct
// hops, random order) over the matrix and computes each one's internal
// RTT. §5.2.2 samples 10,000 circuits per length 3–10.
func SampleCircuits(m ting.MatrixView, length, count int, rng *rand.Rand) ([]CircuitSample, error) {
	if m == nil {
		return nil, errors.New("pathsel: nil matrix")
	}
	n := m.N()
	if length < 2 || length > n {
		return nil, fmt.Errorf("pathsel: length %d over %d nodes", length, n)
	}
	if count <= 0 {
		return nil, fmt.Errorf("pathsel: count %d", count)
	}
	out := make([]CircuitSample, count)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for c := 0; c < count; c++ {
		// Partial Fisher–Yates: the first `length` entries become a
		// uniform random ordered selection of distinct nodes.
		for i := 0; i < length; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		hops := append([]int(nil), perm[:length]...)
		var rtt float64
		for i := 0; i+1 < length; i++ {
			rtt += m.At(hops[i], hops[i+1])
		}
		out[c] = CircuitSample{Hops: hops, RTTms: rtt}
	}
	return out, nil
}

// LengthHistogram is Figure 16's data for one circuit length: the number
// of circuits (scaled to the full C(n, l) population) whose RTT falls in
// each 50ms bin.
type LengthHistogram struct {
	Length int
	// Hist counts circuits per bin, scaled by C(n,l)/samples.
	Hist *stats.Histogram
	// NodeProb[bin] is the median, over nodes, of the probability that a
	// node appears on a sampled circuit in that bin, normalized by the
	// total circuits of this length — Figure 17's y-axis.
	NodeProb []float64
}

// BinMs is the paper's Figure 16/17 bin size.
const BinMs = 50

// AnalyzeLengths reproduces Figures 16 and 17: for each length, sample
// circuits, histogram their RTTs with C(n,l) scaling, and compute the
// median per-node membership probability per bin.
func AnalyzeLengths(m ting.MatrixView, lengths []int, samples int, seed int64) ([]LengthHistogram, error) {
	if len(lengths) == 0 {
		return nil, errors.New("pathsel: no lengths")
	}
	rng := rand.New(rand.NewSource(seed))
	n := m.N()
	out := make([]LengthHistogram, 0, len(lengths))
	for _, l := range lengths {
		circs, err := SampleCircuits(m, l, samples, rng)
		if err != nil {
			return nil, err
		}
		h, err := stats.NewHistogram(0, BinMs)
		if err != nil {
			return nil, err
		}
		scale := stats.Choose(n, l) / float64(samples)
		// occurrences[bin][node] = sampled circuits in bin containing node.
		occ := make(map[int][]int)
		binOf := func(rtt float64) int { return int(rtt / BinMs) }
		for _, c := range circs {
			h.Add(c.RTTms, scale)
			b := binOf(c.RTTms)
			if occ[b] == nil {
				occ[b] = make([]int, n)
			}
			for _, hop := range c.Hops {
				occ[b][hop]++
			}
		}
		nBins := len(h.Counts)
		probs := make([]float64, nBins)
		for b := 0; b < nBins; b++ {
			counts := occ[b]
			if counts == nil {
				continue
			}
			perNode := make([]float64, n)
			for i, cnt := range counts {
				perNode[i] = float64(cnt) / float64(samples)
			}
			med, err := stats.Median(perNode)
			if err != nil {
				return nil, err
			}
			probs[b] = med
		}
		out = append(out, LengthHistogram{Length: l, Hist: h, NodeProb: probs})
	}
	return out, nil
}

// CircuitsWithin returns the (scaled) number of circuits whose RTT lies in
// [loMs, hiMs) — the quantity behind §5.2.2's observation that a user
// seeking 200–300ms has orders of magnitude more 4- and 5-hop circuits to
// choose among than 3-hop ones.
func (lh LengthHistogram) CircuitsWithin(loMs, hiMs float64) float64 {
	var total float64
	for i, c := range lh.Hist.Counts {
		center := lh.Hist.BinCenter(i)
		if center >= loMs && center < hiMs {
			total += c
		}
	}
	return total
}
