// Package pathsel implements the path-selection study of §5.2: triangle
// inequality violations in inter-relay RTTs (Figures 14, 15) and the
// latency/anonymity properties of circuits longer than three hops
// (Figures 16, 17).
package pathsel

import (
	"errors"

	"ting/internal/ting"
)

// TIV records the best detour for one pair: routing s→r→d beats the
// direct s→d path.
type TIV struct {
	// S, D, R are node indices: source, destination, detour relay.
	S, D, R int
	// DirectMs is R(s,d); DetourMs is R(s,r)+R(r,d).
	DirectMs, DetourMs float64
	// Predicted marks a violation whose *direct* leg is a model-completed
	// (ProvPredicted) cell: the violation may be an artifact of prediction
	// error, so it is reported as a candidate and flagged. Violations
	// whose *witness* legs (s→r or r→d) are predicted are never reported
	// at all — a completed matrix must not manufacture fake detours.
	Predicted bool
}

// SavingsFraction is 1 − detour/direct, the x-axis of Figure 14.
func (t TIV) SavingsFraction() float64 {
	if t.DirectMs == 0 {
		return 0
	}
	return 1 - t.DetourMs/t.DirectMs
}

// FindTIVs scans all unordered pairs of the matrix and returns, for every
// pair with at least one violating relay, the best (lowest-detour) TIV.
// §5.2.1: "for 69% of all pairs of Tor nodes in our data, there exists at
// least one circuit that results in a TIV."
func FindTIVs(m ting.MatrixView) ([]TIV, error) {
	if m == nil {
		return nil, errors.New("pathsel: nil matrix")
	}
	n := m.N()
	// O(N³) cell reads: one dense materialization up front beats paying
	// the tiled store's indirection per read.
	rtt := m.Dense()
	// Predicted-cell mask, O(N²) up front. Fully-measured matrices (the
	// common case, and the benched one) take the branch-free inner loop
	// below; only matrices that actually contain predicted cells pay the
	// mask lookups.
	var pred [][]bool
	for s := 0; s < n && pred == nil; s++ {
		for d := s + 1; d < n; d++ {
			if m.ProvAt(s, d) == ting.ProvPredicted {
				pred = make([][]bool, n)
				break
			}
		}
	}
	if pred != nil {
		backing := make([]bool, n*n)
		for s := 0; s < n; s++ {
			pred[s] = backing[s*n : (s+1)*n : (s+1)*n]
			for d := 0; d < n; d++ {
				if s != d && m.ProvAt(s, d) == ting.ProvPredicted {
					pred[s][d] = true
				}
			}
		}
	}
	var out []TIV
	for s := 0; s < n; s++ {
		rowS := rtt[s]
		for d := s + 1; d < n; d++ {
			direct := rowS[d]
			best := TIV{S: s, D: d, R: -1, DirectMs: direct, DetourMs: direct}
			if pred == nil {
				for r := 0; r < n; r++ {
					if r == s || r == d {
						continue
					}
					detour := rowS[r] + rtt[r][d]
					if detour < best.DetourMs {
						best.DetourMs = detour
						best.R = r
					}
				}
			} else {
				predS := pred[s]
				for r := 0; r < n; r++ {
					if r == s || r == d || predS[r] || pred[r][d] {
						continue
					}
					detour := rowS[r] + rtt[r][d]
					if detour < best.DetourMs {
						best.DetourMs = detour
						best.R = r
					}
				}
				best.Predicted = predS[d]
			}
			if best.R >= 0 {
				out = append(out, best)
			}
		}
	}
	return out, nil
}

// TIVSummary aggregates the Figure 14 statistics.
type TIVSummary struct {
	// Pairs is the number of unordered pairs scanned.
	Pairs int
	// WithTIV is how many pairs had at least one violating relay.
	WithTIV int
	// Savings holds each TIV pair's fractional saving.
	Savings []float64
}

// FractionWithTIV is WithTIV / Pairs.
func (s TIVSummary) FractionWithTIV() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.WithTIV) / float64(s.Pairs)
}

// SummarizeTIVs runs FindTIVs and aggregates.
func SummarizeTIVs(m ting.MatrixView) (TIVSummary, error) {
	tivs, err := FindTIVs(m)
	if err != nil {
		return TIVSummary{}, err
	}
	n := m.N()
	sum := TIVSummary{Pairs: n * (n - 1) / 2, WithTIV: len(tivs)}
	for _, t := range tivs {
		sum.Savings = append(sum.Savings, t.SavingsFraction())
	}
	return sum, nil
}
