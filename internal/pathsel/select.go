package pathsel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ting/internal/ting"
)

// This file implements the circuit-selection algorithm the paper leaves to
// future work (§5.2.2, §6): with an all-pairs RTT matrix, a client can
// choose circuits *longer* than three hops that still meet a latency
// budget, gaining anonymity (a vastly larger candidate set) at no latency
// cost. The selection must not collapse onto a few well-connected relays
// — Figure 17's concern — so the sampler is rejection-based (uniform over
// qualifying circuits) and its entropy is measured.

// SelectLowLatency samples up to k distinct circuits of the given length
// whose internal RTT is at most budgetMs, by uniform rejection sampling
// with at most `attempts` draws. The result is an unbiased sample of the
// qualifying-circuit population, which is what preserves selection
// entropy.
func SelectLowLatency(m ting.MatrixView, length int, budgetMs float64, k, attempts int, rng *rand.Rand) ([]CircuitSample, error) {
	return SelectLowLatencyConf(m, length, budgetMs, 0, k, attempts, rng)
}

// SelectLowLatencyConf is SelectLowLatency with a per-cell confidence
// floor: circuits using any hop-to-hop cell whose ConfAt is below minConf
// are rejected. On a coordinate-completed matrix this lets a client trade
// candidate-set size for trustworthy latency estimates — minConf 0 accepts
// every cell (measured cells always score 1), minConf just above 0 rejects
// missing cells, and a high minConf restricts selection to measured or
// confidently-predicted pairs.
func SelectLowLatencyConf(m ting.MatrixView, length int, budgetMs, minConf float64, k, attempts int, rng *rand.Rand) ([]CircuitSample, error) {
	if m == nil {
		return nil, errors.New("pathsel: nil matrix")
	}
	if k <= 0 || attempts < k {
		return nil, fmt.Errorf("pathsel: k=%d attempts=%d", k, attempts)
	}
	if budgetMs <= 0 {
		return nil, errors.New("pathsel: non-positive budget")
	}
	if minConf > 1 {
		return nil, fmt.Errorf("pathsel: minConf %v > 1 rejects every circuit", minConf)
	}
	n := m.N()
	if length < 2 || length > n {
		return nil, fmt.Errorf("pathsel: length %d over %d nodes", length, n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	out := make([]CircuitSample, 0, k)
	for a := 0; a < attempts && len(out) < k; a++ {
		for i := 0; i < length; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		var rtt float64
		ok := true
		for i := 0; i+1 < length; i++ {
			if minConf > 0 && m.ConfAt(perm[i], perm[i+1]) < minConf {
				ok = false
				break
			}
			rtt += m.At(perm[i], perm[i+1])
			if rtt > budgetMs {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, CircuitSample{
			Hops:  append([]int(nil), perm[:length]...),
			RTTms: rtt,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pathsel: no %d-hop circuit within %.0fms in %d attempts",
			length, budgetMs, attempts)
	}
	return out, nil
}

// SelectionEntropy returns the Shannon entropy of relay usage across the
// selected circuits, normalized to [0, 1] where 1 means every relay
// appears equally often (the most anonymity-preserving selection).
func SelectionEntropy(circs []CircuitSample, n int) float64 {
	if len(circs) == 0 || n <= 1 {
		return 0
	}
	counts := make([]float64, n)
	var total float64
	for _, c := range circs {
		for _, h := range c.Hops {
			counts[h]++
			total++
		}
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h / math.Log2(float64(n))
}

// MedianRTT of a circuit set.
func MedianRTT(circs []CircuitSample) (float64, error) {
	if len(circs) == 0 {
		return 0, errors.New("pathsel: no circuits")
	}
	vals := make([]float64, len(circs))
	for i, c := range circs {
		vals[i] = c.RTTms
	}
	// Inline median to avoid a stats import cycle concern (none exists,
	// but the computation is two lines).
	return medianOf(vals), nil
}

func medianOf(vals []float64) float64 {
	cp := append([]float64(nil), vals...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}
