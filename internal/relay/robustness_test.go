package relay

import (
	"math/rand"
	"testing"
	"time"

	"ting/internal/cell"
	"ting/internal/link"
	"ting/internal/onion"
)

// Robustness against malformed and hostile traffic: a relay on a public
// network must survive garbage, not just well-formed clients.

// establishedCircuit sets up a relay with one established circuit and
// returns the client-side link and hop state.
func establishedCircuit(t *testing.T, pn *link.PipeNet, name string) (link.Link, *onion.HopState, cell.CircID) {
	t.Helper()
	_, id := startRelay(t, pn, name)
	lk, err := pn.Dial(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lk.Close() })
	hs, err := onion.StartHandshake(id.Public(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var create cell.Cell
	create.Circ = 77
	create.Cmd = cell.Create
	copy(create.Payload[:], hs.Onionskin())
	if err := sendCell(lk, create); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil || got.Cmd != cell.Created {
		t.Fatalf("no CREATED: %v %v", got.Cmd, err)
	}
	hop, err := hs.Complete(got.Payload[:onion.ReplyLen])
	if err != nil {
		t.Fatal(err)
	}
	return lk, hop, 77
}

func TestRelaySurvivesGarbageRelayCells(t *testing.T) {
	pn := link.NewPipeNet()
	lk, hop, circ := establishedCircuit(t, pn, "garbage-relay")

	// Random payloads that decrypt to junk: the relay has no next hop, so
	// unrecognized cells destroy the circuit — but must not crash or hang
	// the relay.
	rng := rand.New(rand.NewSource(1))
	var c cell.Cell
	c.Circ = circ
	c.Cmd = cell.Relay
	for i := range c.Payload {
		c.Payload[i] = byte(rng.Intn(256))
	}
	if err := sendCell(lk, c); err != nil {
		t.Fatal(err)
	}
	// The relay answers with DESTROY (junk at the end of a circuit).
	got, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != cell.Destroy {
		t.Errorf("got %s, want DESTROY for junk cell", got.Cmd)
	}
	_ = hop
}

func TestRelaySurvivesRecognizedGarbageCommand(t *testing.T) {
	pn := link.NewPipeNet()
	lk, hop, circ := establishedCircuit(t, pn, "badcmd-relay")

	// A correctly sealed cell whose relay command is invalid: the relay
	// must reject it and tear down cleanly.
	var p [cell.PayloadLen]byte
	p[0] = 250 // unknown relay command, recognized=0
	hop.SealForward(&p)
	hop.CryptForward(&p)
	if err := sendCell(lk, cell.Cell{Circ: circ, Cmd: cell.Relay, Payload: p}); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != cell.Destroy {
		t.Errorf("got %s, want DESTROY for invalid relay command", got.Cmd)
	}
}

func TestRelayIgnoresDropCells(t *testing.T) {
	pn := link.NewPipeNet()
	lk, hop, circ := establishedCircuit(t, pn, "drop-relay")

	// RELAY_DROP is long-range padding: consumed silently.
	rc := cell.RelayCell{Cmd: cell.RelayDrop}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	hop.SealForward(&p)
	hop.CryptForward(&p)
	if err := sendCell(lk, cell.Cell{Circ: circ, Cmd: cell.Relay, Payload: p}); err != nil {
		t.Fatal(err)
	}
	// The circuit stays alive: a subsequent sealed BEGIN to a non-exit is
	// answered with END, not DESTROY.
	rc2 := cell.RelayCell{Cmd: cell.RelayBegin, Stream: 1, Data: []byte("echo")}
	p2, err := rc2.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	hop.SealForward(&p2)
	hop.CryptForward(&p2)
	if err := sendCell(lk, cell.Cell{Circ: circ, Cmd: cell.Relay, Payload: p2}); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != cell.Relay {
		t.Fatalf("got %s, want RELAY(END)", got.Cmd)
	}
	hop.CryptBackward(&got.Payload)
	if !hop.VerifyBackward(&got.Payload) {
		t.Fatal("reply not recognized")
	}
	reply, err := cell.UnmarshalPayload(&got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Cmd != cell.RelayEnd {
		t.Errorf("reply %s, want END (non-exit refusing BEGIN)", reply.Cmd)
	}
}

func TestRelaySurvivesExtendGarbage(t *testing.T) {
	pn := link.NewPipeNet()
	lk, hop, circ := establishedCircuit(t, pn, "extend-garbage")

	// EXTEND with an unparseable body → END on stream 0, circuit alive.
	rc := cell.RelayCell{Cmd: cell.RelayExtend, Data: []byte{0xFF}}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	hop.SealForward(&p)
	hop.CryptForward(&p)
	if err := sendCell(lk, cell.Cell{Circ: circ, Cmd: cell.Relay, Payload: p}); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	hop.CryptBackward(&got.Payload)
	if !hop.VerifyBackward(&got.Payload) {
		t.Fatal("reply unrecognized")
	}
	reply, err := cell.UnmarshalPayload(&got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Cmd != cell.RelayEnd || reply.Stream != 0 {
		t.Errorf("reply %s stream %d, want END on stream 0", reply.Cmd, reply.Stream)
	}
}

func TestRelayDataOnUnknownStream(t *testing.T) {
	pn := link.NewPipeNet()
	lk, hop, circ := establishedCircuit(t, pn, "nostream")

	rc := cell.RelayCell{Cmd: cell.RelayData, Stream: 42, Data: []byte("orphan")}
	p, err := rc.MarshalPayload()
	if err != nil {
		t.Fatal(err)
	}
	hop.SealForward(&p)
	hop.CryptForward(&p)
	if err := sendCell(lk, cell.Cell{Circ: circ, Cmd: cell.Relay, Payload: p}); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	hop.CryptBackward(&got.Payload)
	if !hop.VerifyBackward(&got.Payload) {
		t.Fatal("reply unrecognized")
	}
	reply, err := cell.UnmarshalPayload(&got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Cmd != cell.RelayEnd || reply.Stream != 42 {
		t.Errorf("reply %s stream %d, want END on stream 42", reply.Cmd, reply.Stream)
	}
}

func TestRelaySurvivesCellFlood(t *testing.T) {
	pn := link.NewPipeNet()
	r, _ := startRelay(t, pn, "flooded")
	lk, err := pn.Dial("flooded")
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	// Drain whatever the relay answers (CREATEDs and DESTROYs); an unread
	// reply buffer would otherwise exert backpressure on the relay — by
	// design — and stall the flood itself.
	go func() {
		for {
			if _, err := recvCell(lk); err != nil {
				return
			}
		}
	}()
	// 2000 garbage cells across commands; the relay must stay responsive.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		var c cell.Cell
		c.Circ = cell.CircID(rng.Uint32())
		c.Cmd = cell.Command(rng.Intn(5))
		for j := 0; j < 16; j++ {
			c.Payload[rng.Intn(cell.PayloadLen)] = byte(rng.Intn(256))
		}
		if err := sendCell(lk, c); err != nil {
			t.Fatalf("flood send %d: %v", i, err)
		}
	}
	// Still answers a legitimate handshake afterwards.
	deadline := time.After(5 * time.Second)
	okCh := make(chan error, 1)
	go func() {
		lk2, err := pn.Dial("flooded")
		if err != nil {
			okCh <- err
			return
		}
		defer lk2.Close()
		id, err := onion.NewIdentity(nil)
		if err != nil {
			okCh <- err
			return
		}
		_ = id
		hs, err := onion.StartHandshake(relayPublicKey(t, r), nil)
		if err != nil {
			okCh <- err
			return
		}
		var create cell.Cell
		create.Circ = 1
		create.Cmd = cell.Create
		copy(create.Payload[:], hs.Onionskin())
		if err := sendCell(lk2, create); err != nil {
			okCh <- err
			return
		}
		got, err := recvCell(lk2)
		if err != nil {
			okCh <- err
			return
		}
		// After a flood of garbage CREATEs the relay may answer DESTROY to
		// bad ones but must answer CREATED to ours.
		for got.Cmd != cell.Created {
			got, err = recvCell(lk2)
			if err != nil {
				okCh <- err
				return
			}
		}
		_, err = hs.Complete(got.Payload[:onion.ReplyLen])
		okCh <- err
	}()
	select {
	case err := <-okCh:
		if err != nil {
			t.Fatalf("relay unresponsive after flood: %v", err)
		}
	case <-deadline:
		t.Fatal("relay hung after flood")
	}
}

// relayPublicKey digs the identity out of the running relay's config for
// the flood test.
func relayPublicKey(t *testing.T, r *Relay) onion.PublicKey {
	t.Helper()
	return r.cfg.Identity.Public()
}
