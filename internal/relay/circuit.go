package relay

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ting/internal/cell"
	"ting/internal/onion"
)

// circuit is one circuit's state at this relay: the client-facing side
// (prev), the established hop crypto, and — once extended — its slot on a
// shared onward connection toward the next relay.
type circuit struct {
	r      *Relay
	prevCS *connState
	prevID cell.CircID
	hop    *onion.HopState

	// bwdMu serializes every backward-direction crypto+send so the
	// client's CTR keystream and running digest observe cells in the exact
	// order they were encrypted.
	bwdMu sync.Mutex

	mu              sync.Mutex
	next            *outConn
	nextID          cell.CircID
	awaitingCreated bool
	extendTimer     *time.Timer
	destroyed       bool
	streams         map[cell.StreamID]*exitStream
}

// handleOwnCell processes a relay cell addressed to this hop.
func (c *circuit) handleOwnCell(p *[cell.PayloadLen]byte) {
	rc, err := cell.UnmarshalPayload(p)
	if err != nil {
		c.r.cfg.Logf("%s: bad relay cell: %v", c.r.cfg.Nickname, err)
		c.destroy(true, true)
		return
	}
	switch rc.Cmd {
	case cell.RelayExtend:
		c.handleExtend(rc)
	case cell.RelayBegin:
		c.handleBegin(rc)
	case cell.RelayData:
		c.handleData(rc)
	case cell.RelayEnd:
		c.closeStream(rc.Stream)
	case cell.RelaySendme:
		c.handleSendme(rc.Stream)
	case cell.RelayDrop:
		// Padding at the circuit layer; discard.
	default:
		c.r.cfg.Logf("%s: unexpected relay cmd %s", c.r.cfg.Nickname, rc.Cmd)
	}
}

// sendBackward seals and layers a relay cell from this hop toward the
// client.
func (c *circuit) sendBackward(rc cell.RelayCell) error {
	p, err := rc.MarshalPayload()
	if err != nil {
		return err
	}
	c.bwdMu.Lock()
	defer c.bwdMu.Unlock()
	c.hop.SealBackward(&p)
	c.hop.CryptBackward(&p)
	out := cell.Cell{Circ: c.prevID, Cmd: cell.Relay, Payload: p}
	return c.prevCS.lk.Send(&out)
}

// relayBackward adds this hop's layer to a cell arriving from the next
// relay and passes it toward the client.
func (c *circuit) relayBackward(p *[cell.PayloadLen]byte) error {
	c.bwdMu.Lock()
	defer c.bwdMu.Unlock()
	c.hop.CryptBackward(p)
	out := cell.Cell{Circ: c.prevID, Cmd: cell.Relay, Payload: *p}
	return c.prevCS.lk.Send(&out)
}

func (c *circuit) handleExtend(rc cell.RelayCell) {
	addr, onionskin, err := cell.DecodeExtend(rc.Data)
	if err != nil {
		c.extendFailed(fmt.Sprintf("bad extend: %v", err))
		return
	}
	if addr == c.r.cfg.Addr {
		// A node cannot appear on a circuit twice (§3.1): refuse to extend
		// to ourselves.
		c.extendFailed("refusing to extend to self")
		return
	}
	if c.r.Draining() {
		// The circuit survived Drain's sweep (racing CREATE); refuse to
		// grow it any further.
		c.extendFailed("relay draining")
		return
	}
	c.mu.Lock()
	if c.next != nil || c.awaitingCreated {
		c.mu.Unlock()
		c.extendFailed("circuit already extended")
		return
	}
	c.mu.Unlock()

	oc, err := c.r.getOutConn(addr)
	if err != nil {
		c.extendFailed(err.Error())
		return
	}
	nextID, err := oc.register(c)
	if err != nil {
		c.extendFailed(err.Error())
		return
	}
	c.mu.Lock()
	if c.destroyed {
		c.mu.Unlock()
		oc.unregister(nextID)
		return
	}
	c.next = oc
	c.nextID = nextID
	c.awaitingCreated = true
	c.extendTimer = time.AfterFunc(c.r.cfg.ExtendTimeout, func() { c.extendTimedOut(nextID) })
	c.mu.Unlock()

	var create cell.Cell
	create.Circ = nextID
	create.Cmd = cell.Create
	copy(create.Payload[:], onionskin)
	if err := oc.send(&create); err != nil {
		c.clearExtend()
		oc.unregister(nextID)
		c.extendFailed(fmt.Sprintf("create to %s: %v", addr, err))
	}
}

// handleCreated completes a pending extend: the next relay answered, so
// forward its handshake reply to the client as RELAY_EXTENDED.
func (c *circuit) handleCreated(p *[cell.PayloadLen]byte) {
	c.mu.Lock()
	if !c.awaitingCreated || c.destroyed {
		c.mu.Unlock()
		return
	}
	c.awaitingCreated = false
	if c.extendTimer != nil {
		c.extendTimer.Stop()
		c.extendTimer = nil
	}
	c.mu.Unlock()

	if err := c.sendBackward(cell.RelayCell{
		Cmd:  cell.RelayExtended,
		Data: p[:onion.ReplyLen],
	}); err != nil {
		c.destroy(false, true)
	}
}

// extendTimedOut fires when no CREATED arrived in time.
func (c *circuit) extendTimedOut(nextID cell.CircID) {
	c.mu.Lock()
	if !c.awaitingCreated || c.destroyed || c.nextID != nextID {
		c.mu.Unlock()
		return
	}
	oc := c.next
	c.next = nil
	c.nextID = 0
	c.awaitingCreated = false
	c.extendTimer = nil
	c.mu.Unlock()
	if oc != nil {
		oc.unregister(nextID)
	}
	c.extendFailed("timeout waiting for next relay")
}

// clearExtend resets the onward state after a failed CREATE send.
func (c *circuit) clearExtend() {
	c.mu.Lock()
	if c.extendTimer != nil {
		c.extendTimer.Stop()
		c.extendTimer = nil
	}
	c.next = nil
	c.nextID = 0
	c.awaitingCreated = false
	c.mu.Unlock()
}

func (c *circuit) extendFailed(reason string) {
	c.r.cfg.Logf("%s: extend failed: %s", c.r.cfg.Nickname, reason)
	_ = c.sendBackward(cell.RelayCell{Cmd: cell.RelayEnd, Stream: 0, Data: []byte(reason)})
}

// exitStream is one open exit-side stream plus its flow-control state.
type exitStream struct {
	conn io.ReadWriteCloser
	// window holds send tokens for destination→client DATA cells; the
	// stream reader blocks when the client has not acknowledged enough
	// cells with SENDMEs.
	window chan struct{}
	// out queues client→destination data for the stream's writer
	// goroutine. Its capacity is one full flow-control window, so a
	// well-behaved client can never overflow it — and the circuit's read
	// loop never blocks on destination I/O (no head-of-line blocking
	// across circuits).
	out chan []byte

	closeOnce sync.Once
	closed    chan struct{}
}

func (st *exitStream) close() {
	st.closeOnce.Do(func() {
		close(st.closed)
		st.conn.Close()
	})
}

func (c *circuit) handleBegin(rc cell.RelayCell) {
	target := string(rc.Data)
	if c.r.cfg.ExitDialer == nil {
		c.streamEnd(rc.Stream, "not an exit relay")
		return
	}
	if c.r.cfg.ExitPolicy != nil && !c.r.cfg.ExitPolicy(target) {
		c.streamEnd(rc.Stream, "exit policy refused "+target)
		return
	}
	conn, err := c.r.cfg.ExitDialer.DialStream(target)
	if err != nil {
		c.streamEnd(rc.Stream, fmt.Sprintf("connect to %s: %v", target, err))
		return
	}
	st := &exitStream{
		conn:   conn,
		window: make(chan struct{}, c.r.cfg.StreamWindow),
		out:    make(chan []byte, c.r.cfg.StreamWindow),
		closed: make(chan struct{}),
	}
	for i := 0; i < c.r.cfg.StreamWindow; i++ {
		st.window <- struct{}{}
	}
	c.mu.Lock()
	if c.destroyed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if _, dup := c.streams[rc.Stream]; dup {
		c.mu.Unlock()
		conn.Close()
		c.streamEnd(rc.Stream, "stream id in use")
		return
	}
	c.streams[rc.Stream] = st
	c.mu.Unlock()
	c.r.stats.mu.Lock()
	c.r.stats.StreamsOpened++
	c.r.stats.mu.Unlock()
	c.r.tm.streamsOpened.Inc()

	if err := c.sendBackward(cell.RelayCell{Cmd: cell.RelayConnected, Stream: rc.Stream}); err != nil {
		c.closeStream(rc.Stream)
		return
	}
	c.r.wg.Add(2)
	go func() {
		defer c.r.wg.Done()
		c.streamReadLoop(rc.Stream, st)
	}()
	go func() {
		defer c.r.wg.Done()
		c.streamWriteLoop(rc.Stream, st)
	}()
}

// streamWriteLoop drains queued client data into the destination and
// acknowledges consumption with SENDMEs — only after the data has actually
// been written, which is what makes the window an end-to-end bound.
func (c *circuit) streamWriteLoop(id cell.StreamID, st *exitStream) {
	consumed := 0
	for {
		select {
		case <-st.closed:
			return
		case data := <-st.out:
			_, err := st.conn.Write(data)
			// The queue transferred ownership to this loop; once the bytes
			// are in the destination socket the buffer can go home.
			cell.PutBuf(data)
			if err != nil {
				select {
				case <-st.closed:
				default:
					c.streamEnd(id, "write: "+err.Error())
					c.closeStream(id)
				}
				return
			}
			consumed++
			if consumed >= c.r.cfg.SendmeEvery {
				consumed = 0
				if err := c.sendBackward(cell.RelayCell{Cmd: cell.RelaySendme, Stream: id}); err != nil {
					return
				}
			}
		}
	}
}

// streamReadLoop pumps destination→client data as RELAY_DATA cells,
// pausing whenever the flow-control window is exhausted.
func (c *circuit) streamReadLoop(id cell.StreamID, st *exitStream) {
	buf := make([]byte, cell.RelayDataLen)
	for {
		// One window token per DATA cell we are about to emit.
		select {
		case <-st.window:
		case <-st.closed:
			return
		}
		n, err := st.conn.Read(buf)
		if n > 0 {
			// Returning data pays the forwarding delay too: each relay on
			// the round trip contributes 2F, the exit included (Eq. 1).
			c.r.forwardDelay()
			data := append(cell.GetBuf(), buf[:n]...)
			serr := c.sendBackward(cell.RelayCell{
				Cmd: cell.RelayData, Stream: id, Data: data,
			})
			// sendBackward marshaled data into the cell payload; the buffer
			// is ours again either way.
			cell.PutBuf(data)
			if serr != nil {
				c.closeStream(id)
				return
			}
		}
		if err != nil {
			c.mu.Lock()
			_, stillOpen := c.streams[id]
			c.mu.Unlock()
			if stillOpen {
				c.streamEnd(id, "eof")
				c.closeStream(id)
			}
			return
		}
	}
}

func (c *circuit) handleData(rc cell.RelayCell) {
	c.mu.Lock()
	st := c.streams[rc.Stream]
	c.mu.Unlock()
	if st == nil {
		c.streamEnd(rc.Stream, "no such stream")
		return
	}
	select {
	case st.out <- rc.Data:
	case <-st.closed:
	default:
		// More unacknowledged cells than the window permits: the peer is
		// violating flow control.
		c.streamEnd(rc.Stream, "flow control violation")
		c.closeStream(rc.Stream)
	}
}

// handleSendme refills the exit-side window for one stream.
func (c *circuit) handleSendme(id cell.StreamID) {
	c.mu.Lock()
	st := c.streams[id]
	c.mu.Unlock()
	if st == nil {
		return
	}
	for i := 0; i < c.r.cfg.SendmeEvery; i++ {
		select {
		case st.window <- struct{}{}:
		default:
			return // window already full; ignore excess credit
		}
	}
}

func (c *circuit) streamEnd(id cell.StreamID, reason string) {
	_ = c.sendBackward(cell.RelayCell{Cmd: cell.RelayEnd, Stream: id, Data: []byte(reason)})
}

func (c *circuit) closeStream(id cell.StreamID) {
	c.mu.Lock()
	st := c.streams[id]
	delete(c.streams, id)
	c.mu.Unlock()
	if st != nil {
		st.close()
	}
}

// destroy tears the circuit down, optionally notifying each side. The
// shared onward connection survives; only this circuit's slot is freed.
func (c *circuit) destroy(notifyPrev, notifyNext bool) {
	c.mu.Lock()
	if c.destroyed {
		c.mu.Unlock()
		return
	}
	c.destroyed = true
	c.r.tm.circuitsDestroyed.Inc()
	if c.extendTimer != nil {
		c.extendTimer.Stop()
		c.extendTimer = nil
	}
	next, nextID := c.next, c.nextID
	streams := c.streams
	c.streams = make(map[cell.StreamID]*exitStream)
	c.mu.Unlock()

	c.prevCS.remove(c.prevID)
	for _, st := range streams {
		st.close()
	}
	if notifyPrev {
		_ = c.prevCS.sendControl(c.prevID, cell.Destroy)
	}
	if next != nil {
		next.unregister(nextID)
		if notifyNext {
			dc := cell.Cell{Circ: nextID, Cmd: cell.Destroy}
			_ = next.send(&dc)
		}
	}
}
