package relay

import (
	"math/rand"
	"testing"
	"time"

	"ting/internal/cell"
	"ting/internal/link"
	"ting/internal/onion"
)

func testIdentity(t *testing.T) *onion.Identity {
	t.Helper()
	id, err := onion.NewIdentity(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func validConfig(t *testing.T, pn *link.PipeNet, name string) Config {
	t.Helper()
	ln, err := pn.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Nickname:    name,
		Addr:        name,
		Identity:    testIdentity(t),
		Listener:    ln,
		RelayDialer: pn,
	}
}

func TestConfigValidation(t *testing.T) {
	pn := link.NewPipeNet()
	good := validConfig(t, pn, "ok")
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Nickname = "" },
		func(c *Config) { c.Addr = "" },
		func(c *Config) { c.Identity = nil },
		func(c *Config) { c.Listener = nil },
		func(c *Config) { c.RelayDialer = nil },
	}
	for i, mut := range mutations {
		cfg := validConfig(t, pn, string(rune('a'+i)))
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func startRelay(t *testing.T, pn *link.PipeNet, name string) (*Relay, *onion.Identity) {
	t.Helper()
	cfg := validConfig(t, pn, name)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(func() { r.Close() })
	return r, cfg.Identity
}

func TestCreateHandshakeDirect(t *testing.T) {
	pn := link.NewPipeNet()
	_, id := startRelay(t, pn, "direct")

	lk, err := pn.Dial("direct")
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()

	hs, err := onion.StartHandshake(id.Public(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var create cell.Cell
	create.Circ = 7
	create.Cmd = cell.Create
	copy(create.Payload[:], hs.Onionskin())
	if err := sendCell(lk, create); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != cell.Created || got.Circ != 7 {
		t.Fatalf("got %v", got.String())
	}
	if _, err := hs.Complete(got.Payload[:onion.ReplyLen]); err != nil {
		t.Fatalf("handshake completion failed: %v", err)
	}
}

func TestDuplicateCreateDestroyed(t *testing.T) {
	pn := link.NewPipeNet()
	_, id := startRelay(t, pn, "dup")
	lk, err := pn.Dial("dup")
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()

	for i := 0; i < 2; i++ {
		hs, err := onion.StartHandshake(id.Public(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var create cell.Cell
		create.Circ = 9
		create.Cmd = cell.Create
		copy(create.Payload[:], hs.Onionskin())
		if err := sendCell(lk, create); err != nil {
			t.Fatal(err)
		}
	}
	// First reply: CREATED. Second: DESTROY (duplicate ID).
	first, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	second, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cmd != cell.Created || second.Cmd != cell.Destroy {
		t.Errorf("got %s then %s, want CREATED then DESTROY", first.Cmd, second.Cmd)
	}
}

func TestGarbageCreateDestroyed(t *testing.T) {
	pn := link.NewPipeNet()
	startRelay(t, pn, "garbage")
	lk, err := pn.Dial("garbage")
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	var create cell.Cell
	create.Circ = 3
	create.Cmd = cell.Create
	// All-zero onionskin is an invalid X25519 point result (low order);
	// the relay must refuse, not crash.
	if err := sendCell(lk, create); err != nil {
		t.Fatal(err)
	}
	got, err := recvCell(lk)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmd != cell.Destroy {
		t.Errorf("got %s, want DESTROY", got.Cmd)
	}
}

func TestRelayOnUnknownCircuitIgnored(t *testing.T) {
	pn := link.NewPipeNet()
	r, _ := startRelay(t, pn, "unknown")
	lk, err := pn.Dial("unknown")
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	if err := sendCell(lk, cell.Cell{Circ: 123, Cmd: cell.Relay}); err != nil {
		t.Fatal(err)
	}
	// Also padding and destroy on unknown circuits must be harmless.
	if err := sendCell(lk, cell.Cell{Circ: 5, Cmd: cell.Padding}); err != nil {
		t.Fatal(err)
	}
	if err := sendCell(lk, cell.Cell{Circ: 5, Cmd: cell.Destroy}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	circuits, _, _ := r.Stats()
	if circuits != 0 {
		t.Errorf("stray cells created %d circuits", circuits)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	pn := link.NewPipeNet()
	r, _ := startRelay(t, pn, "closer")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
