// Package relay implements a mintor onion router: it accepts link
// connections, answers CREATE handshakes, extends circuits onward, forwards
// relay cells while adding/removing its onion layer, and (for exit relays)
// opens streams to destinations.
//
// The implementation mirrors the Tor behaviours Ting depends on:
//
//   - relays learn only their predecessor and successor on a circuit;
//   - every forwarded cell pays the relay's forwarding delay, the F terms
//     of Eq. (1) — injectable here so the overlay reproduces the paper's
//     queueing behaviour;
//   - relays refuse to extend a circuit to themselves (a node cannot appear
//     twice on a circuit, §3.1);
//   - exit policies restrict BEGIN targets, like the paper's restrictive
//     exit policy that only allowed the authors' own echo hosts (§4.1).
package relay

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ting/internal/cell"
	"ting/internal/link"
	"ting/internal/onion"
	"ting/internal/telemetry"
)

// StreamDialer opens exit-side byte streams toward named targets.
type StreamDialer interface {
	DialStream(target string) (io.ReadWriteCloser, error)
}

// Config configures a relay.
type Config struct {
	// Nickname names the relay in logs and is its self-identity for the
	// extend-to-self check. Required.
	Nickname string
	// Addr is the relay's own published link address; EXTEND requests for
	// this address are refused. Required.
	Addr string
	// Identity is the relay's onion key pair. Required.
	Identity *onion.Identity
	// Listener accepts inbound links. Required.
	Listener link.Listener
	// RelayDialer opens links to other relays for circuit extension.
	// Required.
	RelayDialer link.Dialer
	// ExitDialer, if non-nil, makes the relay exit-capable.
	ExitDialer StreamDialer
	// ExitPolicy, if non-nil, further restricts exit targets.
	ExitPolicy func(target string) bool
	// ForwardDelay, if non-nil, is sampled once per relay-cell traversal
	// and slept before processing — the forwarding delay of §3.2.
	ForwardDelay func() time.Duration
	// ExtendTimeout bounds how long an EXTEND waits for the next relay's
	// CREATED. Default 30s.
	ExtendTimeout time.Duration
	// StreamWindow is the per-stream flow-control window in DATA cells
	// for destination→client traffic (Tor's stream window is 500).
	// Default 500.
	StreamWindow int
	// SendmeEvery is how many consumed DATA cells earn one SENDME
	// acknowledgement (Tor uses 50). Default 50.
	SendmeEvery int
	// Logf, if non-nil, receives debug logs.
	Logf func(format string, args ...any)
	// Telemetry, if non-nil, receives relay counters (relay.cells_relayed,
	// relay.circuits_created, ...) shared with the rest of the stack. Nil
	// disables instrumentation at the cost of one branch per event.
	Telemetry *telemetry.Registry
}

func (c *Config) validate() error {
	switch {
	case c.Nickname == "":
		return errors.New("relay: config missing Nickname")
	case c.Addr == "":
		return errors.New("relay: config missing Addr")
	case c.Identity == nil:
		return errors.New("relay: config missing Identity")
	case c.Listener == nil:
		return errors.New("relay: config missing Listener")
	case c.RelayDialer == nil:
		return errors.New("relay: config missing RelayDialer")
	}
	return nil
}

// Relay is a running onion router.
type Relay struct {
	cfg Config
	rng struct {
		sync.Mutex
		*rand.Rand
	}

	closeOnce sync.Once
	closed    chan struct{}
	draining  atomic.Bool
	wg        sync.WaitGroup

	mu    sync.Mutex
	conns map[*connState]struct{}

	outMu    sync.Mutex
	outSlots map[string]*outSlot

	stats Stats
	tm    relayMetrics
}

// relayMetrics holds the relay's telemetry counters, resolved once at
// construction so the forwarding hot path pays one atomic add per event
// (or one nil check when telemetry is off).
type relayMetrics struct {
	circuitsCreated   *telemetry.Counter
	circuitsDestroyed *telemetry.Counter
	cellsRelayed      *telemetry.Counter
	streamsOpened     *telemetry.Counter
	handshakeFailures *telemetry.Counter
}

// Stats counts relay activity, for tests and operational visibility.
type Stats struct {
	mu            sync.Mutex
	CircuitsBuilt int
	CellsRelayed  int
	StreamsOpened int
}

func (s *Stats) snapshot() (int, int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.CircuitsBuilt, s.CellsRelayed, s.StreamsOpened
}

// New creates a relay; call Start to run it.
func New(cfg Config) (*Relay, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ExtendTimeout <= 0 {
		cfg.ExtendTimeout = 30 * time.Second
	}
	if cfg.StreamWindow <= 0 {
		cfg.StreamWindow = 500
	}
	if cfg.SendmeEvery <= 0 {
		cfg.SendmeEvery = 50
	}
	if cfg.SendmeEvery > cfg.StreamWindow {
		return nil, errors.New("relay: SendmeEvery larger than StreamWindow")
	}
	r := &Relay{
		cfg:      cfg,
		closed:   make(chan struct{}),
		conns:    make(map[*connState]struct{}),
		outSlots: make(map[string]*outSlot),
	}
	r.rng.Rand = rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(cfg.Nickname))<<32))
	r.tm = relayMetrics{
		circuitsCreated:   cfg.Telemetry.Counter("relay.circuits_created"),
		circuitsDestroyed: cfg.Telemetry.Counter("relay.circuits_destroyed"),
		cellsRelayed:      cfg.Telemetry.Counter("relay.cells_relayed"),
		streamsOpened:     cfg.Telemetry.Counter("relay.streams_opened"),
		handshakeFailures: cfg.Telemetry.Counter("relay.handshake_failures"),
	}
	return r, nil
}

// Start launches the accept loop in the background.
func (r *Relay) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.acceptLoop()
	}()
}

// Stats returns circuit/cell/stream counters.
func (r *Relay) Stats() (circuits, cells, streams int) { return r.stats.snapshot() }

// OutConnCount reports how many onward relay connections are open. Tor
// multiplexes all circuits between a relay pair over one connection; tests
// assert the same economy here.
func (r *Relay) OutConnCount() int {
	r.outMu.Lock()
	defer r.outMu.Unlock()
	n := 0
	for _, s := range r.outSlots {
		if s.oc != nil {
			n++
		}
	}
	return n
}

// Drain moves the relay into the draining half of a graceful departure:
// new CREATE handshakes are refused with DESTROY, EXTEND requests fail as
// "relay draining", and every live circuit is torn down with DESTROY
// propagated in both directions. The listener stays open so peers observe
// orderly refusals rather than connection resets; the owner unpublishes
// the descriptor and calls Close once peers have had a chance to react.
// Drain is idempotent.
func (r *Relay) Drain() {
	if !r.draining.CompareAndSwap(false, true) {
		return
	}
	r.mu.Lock()
	conns := make([]*connState, 0, len(r.conns))
	for cs := range r.conns {
		conns = append(conns, cs)
	}
	r.mu.Unlock()
	for _, cs := range conns {
		cs.mu.Lock()
		circs := make([]*circuit, 0, len(cs.circuits))
		for _, circ := range cs.circuits {
			circs = append(circs, circ)
		}
		cs.mu.Unlock()
		for _, circ := range circs {
			circ.destroy(true, true)
		}
	}
}

// Draining reports whether Drain has been called.
func (r *Relay) Draining() bool { return r.draining.Load() }

// Close shuts the relay down and waits for its goroutines.
func (r *Relay) Close() error {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.cfg.Listener.Close()
		r.mu.Lock()
		for cs := range r.conns {
			cs.lk.Close()
		}
		r.mu.Unlock()
		r.outMu.Lock()
		slots := make([]*outSlot, 0, len(r.outSlots))
		for _, s := range r.outSlots {
			slots = append(slots, s)
		}
		r.outMu.Unlock()
		for _, s := range slots {
			if s.oc != nil {
				s.oc.lk.Close()
			}
		}
	})
	r.wg.Wait()
	return nil
}

func (r *Relay) acceptLoop() {
	for {
		lk, err := r.cfg.Listener.Accept()
		if err != nil {
			return
		}
		cs := &connState{r: r, lk: lk, circuits: make(map[cell.CircID]*circuit)}
		r.mu.Lock()
		r.conns[cs] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			cs.readLoop()
			r.mu.Lock()
			delete(r.conns, cs)
			r.mu.Unlock()
		}()
	}
}

func (r *Relay) forwardDelay() {
	if r.cfg.ForwardDelay == nil {
		return
	}
	if d := r.cfg.ForwardDelay(); d > 0 {
		time.Sleep(d)
	}
}

func (r *Relay) newCircID() cell.CircID {
	r.rng.Lock()
	defer r.rng.Unlock()
	for {
		if id := cell.CircID(r.rng.Uint32()); id != 0 {
			return id
		}
	}
}

// recvBatch is how many cells one read-loop wakeup drains from the link at
// most. It matches the link layer's write coalescing: a burst a peer
// flushed together is decrypted together.
const recvBatch = 8

// connState tracks one inbound link and the circuits whose client-facing
// side it carries.
type connState struct {
	r  *Relay
	lk link.Link

	// Read-loop scratch, touched only by the readLoop goroutine: the
	// receive window, the payload-pointer run handed to batched crypto, and
	// the outbound buffer of cells to pass to the next relay.
	cells [recvBatch]cell.Cell
	ps    [recvBatch]*[cell.PayloadLen]byte
	fwd   [recvBatch]cell.Cell

	mu       sync.Mutex
	circuits map[cell.CircID]*circuit
}

func (cs *connState) readLoop() {
	defer cs.teardown()
	br, _ := cs.lk.(link.BatchRecver)
	for {
		n := 1
		if br != nil {
			var err error
			n, err = br.RecvBatch(cs.cells[:])
			if err != nil {
				return
			}
		} else if err := cs.lk.Recv(&cs.cells[0]); err != nil {
			return
		}
		i := 0
		for i < n {
			c := &cs.cells[i]
			if c.Cmd != cell.Relay {
				switch c.Cmd {
				case cell.Create:
					cs.handleCreate(c)
				case cell.Destroy:
					cs.handleDestroy(c.Circ)
				case cell.Padding:
					// ignored
				default:
					cs.r.cfg.Logf("%s: unexpected %s from %s", cs.r.cfg.Nickname, c.Cmd, cs.lk.RemoteAddr())
				}
				i++
				continue
			}
			// Group the run of consecutive RELAY cells on one circuit so the
			// onion layer comes off in a single batched CTR pass.
			j := i + 1
			for j < n && cs.cells[j].Cmd == cell.Relay && cs.cells[j].Circ == c.Circ {
				j++
			}
			cs.handleRelayRun(cs.cells[i:j])
			i = j
		}
	}
}

// handleRelayRun processes consecutive RELAY cells that share a circuit.
// The hop's layer is removed from the whole run with one batched CTR call
// (bit-identical to per-cell crypting, see CryptForwardBatch); recognition,
// the per-traversal forwarding delay of Eq. (1), and onward forwarding then
// happen per cell in arrival order. Unrecognized cells bound for the next
// relay are coalesced and sent as one batch.
func (cs *connState) handleRelayRun(run []cell.Cell) {
	r := cs.r
	circ := cs.lookup(run[0].Circ)
	if circ == nil {
		r.cfg.Logf("%s: RELAY on unknown circ %d", r.cfg.Nickname, run[0].Circ)
		return
	}
	ps := cs.ps[:0]
	for i := range run {
		ps = append(ps, &run[i].Payload)
	}
	circ.hop.CryptForwardBatch(ps)

	nfwd := 0
	for i := range run {
		c := &run[i]
		// A cell earlier in the run may have torn the circuit down; the
		// sequential path would no longer find it in the table, so drop the
		// remainder the same way.
		circ.mu.Lock()
		dead := circ.destroyed
		circ.mu.Unlock()
		if dead {
			break
		}
		r.forwardDelay()
		if circ.hop.VerifyForward(&c.Payload) {
			// Control traffic for this hop may emit onward cells (EXTEND →
			// CREATE); flush forwarded data first to keep the next-relay
			// stream in order.
			if nfwd > 0 {
				if !cs.forwardRun(circ, nfwd) {
					return
				}
				nfwd = 0
			}
			circ.handleOwnCell(&c.Payload)
			continue
		}
		cs.fwd[nfwd] = cell.Cell{Cmd: cell.Relay, Payload: c.Payload}
		nfwd++
	}
	if nfwd > 0 {
		cs.forwardRun(circ, nfwd)
	}
}

// forwardRun passes cs.fwd[:n] to the circuit's next relay, stamping the
// onward circuit ID. It reports false when the circuit ends here or the
// send failed (the circuit is destroyed either way).
func (cs *connState) forwardRun(circ *circuit, n int) bool {
	r := cs.r
	circ.mu.Lock()
	next, nextID := circ.next, circ.nextID
	circ.mu.Unlock()
	if next == nil {
		r.cfg.Logf("%s: unrecognized relay cell at end of circuit", r.cfg.Nickname)
		circ.destroy(true, false)
		return false
	}
	for i := 0; i < n; i++ {
		cs.fwd[i].Circ = nextID
	}
	r.stats.mu.Lock()
	r.stats.CellsRelayed += n
	r.stats.mu.Unlock()
	r.tm.cellsRelayed.Add(int64(n))
	if err := next.sendBatch(cs.fwd[:n]); err != nil {
		circ.destroy(true, false)
		return false
	}
	return true
}

func (cs *connState) teardown() {
	cs.mu.Lock()
	circs := make([]*circuit, 0, len(cs.circuits))
	for _, circ := range cs.circuits {
		circs = append(circs, circ)
	}
	cs.circuits = make(map[cell.CircID]*circuit)
	cs.mu.Unlock()
	for _, circ := range circs {
		circ.destroy(false, true)
	}
	cs.lk.Close()
}

func (cs *connState) lookup(id cell.CircID) *circuit {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.circuits[id]
}

func (cs *connState) remove(id cell.CircID) {
	cs.mu.Lock()
	delete(cs.circuits, id)
	cs.mu.Unlock()
}

func (cs *connState) handleCreate(c *cell.Cell) {
	r := cs.r
	if r.Draining() {
		// Graceful departure: refuse new circuits so clients re-path
		// instead of building through a relay about to vanish.
		r.cfg.Logf("%s: refusing CREATE while draining", r.cfg.Nickname)
		_ = cs.sendControl(c.Circ, cell.Destroy)
		return
	}
	cs.mu.Lock()
	if _, dup := cs.circuits[c.Circ]; dup {
		cs.mu.Unlock()
		r.cfg.Logf("%s: duplicate CREATE circ=%d", r.cfg.Nickname, c.Circ)
		_ = cs.sendControl(c.Circ, cell.Destroy)
		return
	}
	cs.mu.Unlock()

	reply, hop, err := onion.ServerHandshake(r.cfg.Identity, c.Payload[:onion.KeyLen], nil)
	if err != nil {
		r.cfg.Logf("%s: handshake failed: %v", r.cfg.Nickname, err)
		r.tm.handshakeFailures.Inc()
		_ = cs.sendControl(c.Circ, cell.Destroy)
		return
	}
	circ := &circuit{
		r:       r,
		prevCS:  cs,
		prevID:  c.Circ,
		hop:     hop,
		streams: make(map[cell.StreamID]*exitStream),
	}
	cs.mu.Lock()
	cs.circuits[c.Circ] = circ
	cs.mu.Unlock()

	var created cell.Cell
	created.Circ = c.Circ
	created.Cmd = cell.Created
	copy(created.Payload[:], reply)
	if err := cs.lk.Send(&created); err != nil {
		circ.destroy(false, false)
		return
	}
	r.stats.mu.Lock()
	r.stats.CircuitsBuilt++
	r.stats.mu.Unlock()
	r.tm.circuitsCreated.Inc()
}

func (cs *connState) handleDestroy(id cell.CircID) {
	if circ := cs.lookup(id); circ != nil {
		circ.destroy(false, true)
	}
}

// sendControl sends a payload-less control cell (DESTROY) on the inbound
// link without the caller building a 512-byte literal on its stack.
func (cs *connState) sendControl(id cell.CircID, cmd cell.Command) error {
	c := cell.Cell{Circ: id, Cmd: cmd}
	return cs.lk.Send(&c)
}
