package relay

import (
	"fmt"
	"sync"

	"ting/internal/cell"
	"ting/internal/link"
)

// outConn is one shared onward connection to a neighbouring relay. Every
// circuit this relay extends toward the same neighbour is multiplexed over
// it, distinguished by connection-scoped circuit IDs — exactly Tor's
// discipline of one (TLS) connection per relay pair carrying many
// circuits.
type outConn struct {
	r    *Relay
	addr string
	lk   link.Link

	mu       sync.Mutex
	circuits map[cell.CircID]*circuit
	closed   bool
}

// outSlot deduplicates concurrent dials to the same neighbour.
type outSlot struct {
	once sync.Once
	oc   *outConn
	err  error
}

// getOutConn returns the (possibly freshly dialed) shared connection to
// addr.
func (r *Relay) getOutConn(addr string) (*outConn, error) {
	r.outMu.Lock()
	slot := r.outSlots[addr]
	if slot == nil {
		slot = &outSlot{}
		r.outSlots[addr] = slot
	}
	r.outMu.Unlock()

	slot.once.Do(func() {
		lk, err := r.cfg.RelayDialer.Dial(addr)
		if err != nil {
			slot.err = fmt.Errorf("relay: dial %s: %w", addr, err)
			r.dropSlot(addr, slot)
			return
		}
		oc := &outConn{r: r, addr: addr, lk: lk, circuits: make(map[cell.CircID]*circuit)}
		slot.oc = oc
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			oc.readLoop()
		}()
	})
	if slot.err != nil {
		return nil, slot.err
	}
	// The slot may have been torn down between Do and here; the caller's
	// register will fail fast on a closed conn.
	return slot.oc, nil
}

// dropSlot removes a slot so the next extend re-dials.
func (r *Relay) dropSlot(addr string, slot *outSlot) {
	r.outMu.Lock()
	if r.outSlots[addr] == slot {
		delete(r.outSlots, addr)
	}
	r.outMu.Unlock()
}

// register allocates a fresh connection-scoped circuit ID for circ.
func (oc *outConn) register(circ *circuit) (cell.CircID, error) {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.closed {
		return 0, fmt.Errorf("relay: connection to %s closed", oc.addr)
	}
	for {
		id := oc.r.newCircID()
		if _, taken := oc.circuits[id]; !taken {
			oc.circuits[id] = circ
			return id, nil
		}
	}
}

// unregister removes a circuit; the connection stays up for others.
func (oc *outConn) unregister(id cell.CircID) {
	oc.mu.Lock()
	delete(oc.circuits, id)
	oc.mu.Unlock()
}

func (oc *outConn) lookup(id cell.CircID) *circuit {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return oc.circuits[id]
}

// readLoop demultiplexes inbound cells to their circuits. One cell is
// reused across iterations; every handler below copies what it keeps.
func (oc *outConn) readLoop() {
	var c cell.Cell
	for {
		if err := oc.lk.Recv(&c); err != nil {
			oc.teardown()
			return
		}
		switch c.Cmd {
		case cell.Created:
			if circ := oc.lookup(c.Circ); circ != nil {
				circ.handleCreated(&c.Payload)
			}
		case cell.Relay:
			circ := oc.lookup(c.Circ)
			if circ == nil {
				oc.r.cfg.Logf("%s: backward cell on unknown circ %d from %s",
					oc.r.cfg.Nickname, c.Circ, oc.addr)
				continue
			}
			oc.r.forwardDelay()
			oc.r.stats.mu.Lock()
			oc.r.stats.CellsRelayed++
			oc.r.stats.mu.Unlock()
			if err := circ.relayBackward(&c.Payload); err != nil {
				circ.destroy(false, true)
			}
		case cell.Destroy:
			if circ := oc.lookup(c.Circ); circ != nil {
				circ.destroy(true, false)
			}
		case cell.Padding:
		default:
			oc.r.cfg.Logf("%s: unexpected %s from next relay %s", oc.r.cfg.Nickname, c.Cmd, oc.addr)
		}
	}
}

// teardown kills the connection and every circuit on it.
func (oc *outConn) teardown() {
	oc.mu.Lock()
	if oc.closed {
		oc.mu.Unlock()
		return
	}
	oc.closed = true
	circs := make([]*circuit, 0, len(oc.circuits))
	for _, c := range oc.circuits {
		circs = append(circs, c)
	}
	oc.circuits = make(map[cell.CircID]*circuit)
	oc.mu.Unlock()

	oc.r.outMu.Lock()
	if slot := oc.r.outSlots[oc.addr]; slot != nil && slot.oc == oc {
		delete(oc.r.outSlots, oc.addr)
	}
	oc.r.outMu.Unlock()

	oc.lk.Close()
	for _, c := range circs {
		c.destroy(true, false)
	}
}

// send transmits a cell on the shared link.
func (oc *outConn) send(c *cell.Cell) error { return oc.lk.Send(c) }

// sendBatch transmits cells back-to-back, with one flush when the link
// supports batched sends.
func (oc *outConn) sendBatch(cs []cell.Cell) error {
	if bs, ok := oc.lk.(link.BatchSender); ok {
		return bs.SendBatch(cs)
	}
	for i := range cs {
		if err := oc.lk.Send(&cs[i]); err != nil {
			return err
		}
	}
	return nil
}
