#!/usr/bin/env sh
# servesmoke.sh — the serving-plane smoke test: boot tingd in self-contained
# model mode with a fast sweep, hammer it with tingload over the binary
# protocol, and assert it sustains a lookup rate while epochs churn
# underneath, with zero errors and zero 5xx (tingload exits nonzero on any).
#
# Usage: servesmoke.sh [min_rate] [min_epochs] [duration]
#
# The default floor is deliberately far below what loopback hardware does
# (~10^7 lookups/sec locally; the acceptance target is 10^5) so shared CI
# runners don't flake, while a real serving-plane regression — a lock on
# the read path, a stall during epoch swap — still lands far under it.
set -eu

MIN_RATE="${1:-20000}"
MIN_EPOCHS="${2:-2}"
DURATION="${3:-5s}"

workdir="$(mktemp -d)"
trap 'kill "$tingd_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "building tingd and tingload…"
go build -o "$workdir/tingd" ./cmd/tingd
go build -o "$workdir/tingload" ./cmd/tingload

"$workdir/tingd" -model 16 -http 127.0.0.1:0 -bin 127.0.0.1:0 \
  -debug-addr 127.0.0.1:0 -addr-file "$workdir/tingd.addr" \
  -max-age 200ms -sweep-interval 100ms -samples 3 -quiet \
  > "$workdir/tingd.log" 2>&1 &
tingd_pid=$!

# The addr-file appears (atomically) once every surface is bound.
i=0
while [ ! -f "$workdir/tingd.addr" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "tingd never wrote its addr-file; log:" >&2
    cat "$workdir/tingd.log" >&2
    exit 1
  fi
  sleep 0.1
done
cat "$workdir/tingd.addr"

status=0
"$workdir/tingload" -addr-file "$workdir/tingd.addr" -duration "$DURATION" \
  -conns 4 -batch 512 -min-rate "$MIN_RATE" -min-epochs "$MIN_EPOCHS" || status=$?

# The HTTP surface must answer consistently too (much slower by design;
# no rate floor, but zero errors and live epochs still hold).
http_addr="$(sed -n 's/^http=//p' "$workdir/tingd.addr")"
"$workdir/tingload" -http "$http_addr" -duration 2s -conns 2 \
  -min-epochs "$MIN_EPOCHS" || status=$?

if [ "$status" -ne 0 ]; then
  echo "serve smoke failed; tingd log:" >&2
  cat "$workdir/tingd.log" >&2
fi
exit "$status"
