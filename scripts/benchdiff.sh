#!/bin/sh
# benchdiff.sh — diff two bench artifacts (benchjson.sh output) and fail
# on regression. Usage:
#
#   ./scripts/benchdiff.sh BENCH_<base>.json BENCH_<head>.json > diff.md
#
# Prints a markdown table of every benchmark in the head artifact with its
# delta against the baseline, and exits 1 if any benchmark regressed. A
# missing baseline file prints a notice and exits 0 — the gate cannot
# ratchet before the first blessed artifact exists.
#
# Regression thresholds (tunable via environment):
#   ns/op     — fails above BENCHDIFF_NS_TOLERANCE  × baseline (default
#               1.50); baselines under BENCHDIFF_NS_FLOOR ns (default 500)
#               are informational only, fixed-iteration timings that small
#               are timer-granularity noise.
#   allocs/op — fails above BENCHDIFF_ALLOC_TOLERANCE × baseline (default
#               1.25) and by more than 2 allocs absolute; allocation
#               counts are deterministic, so the band is tight.
#
# Benchmarks only in the head artifact are reported as "new" (never fail);
# baseline keys without a head counterpart are reported as "gone". Head
# keys are matched against the baseline exactly first, then by bare
# benchmark name, so an artifact from before keys were package-prefixed
# still gates. To bless an intentional regression, regenerate and commit
# the baseline artifact (see README).
#
# Stdlib tooling only: POSIX sh + awk, no jq.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 baseline.json current.json" >&2
    exit 2
fi
base="$1"
cur="$2"

if [ ! -f "$base" ]; then
    echo "benchdiff: no baseline at $base; diff skipped" >&2
    echo "_No bench baseline (\`$base\`) — regression gate skipped._"
    exit 0
fi
if [ ! -f "$cur" ]; then
    echo "benchdiff: no current artifact at $cur" >&2
    exit 2
fi

awk -v ns_tol="${BENCHDIFF_NS_TOLERANCE:-1.50}" \
    -v ns_floor="${BENCHDIFF_NS_FLOOR:-500}" \
    -v al_tol="${BENCHDIFF_ALLOC_TOLERANCE:-1.25}" \
    -v basefile="$base" -v curfile="$cur" '
function parseline(line) {
    if (line !~ /"ns_per_op"/) return
    key = line
    sub(/^[ \t]*"/, "", key); sub(/".*/, "", key)
    ns = line
    sub(/.*"ns_per_op":[ ]*/, "", ns); sub(/[,}].*/, "", ns)
    al = line
    sub(/.*"allocs_per_op":[ ]*/, "", al); sub(/[,}].*/, "", al)
}
function bare(key) {
    n = split(key, parts, "/")
    return parts[n]
}
function pct(c, b) {
    if (b == 0) return (c == 0 ? "0%" : "+inf")
    d = (c - b) * 100 / b
    return sprintf("%+.1f%%", d)
}
BEGIN {
    while ((getline line < basefile) > 0) {
        parseline(line)
        if (key == "") continue
        bns[key] = ns; bal[key] = al
        bns[bare(key)] = ns; bal[bare(key)] = al
        bseen[key] = 1
        key = ""
    }
    close(basefile)
    print "### Bench diff: `" curfile "` vs `" basefile "`"
    print ""
    print "| benchmark | ns/op (base → head) | Δ | allocs/op (base → head) | Δ | status |"
    print "|---|---|---|---|---|---|"
    fails = 0; news = 0
    while ((getline line < curfile) > 0) {
        parseline(line)
        if (key == "") continue
        k = key
        if (!(k in bseen)) k = bare(key)
        if (!(k in bns)) {
            printf "| %s | — → %s | new | — → %s | new | 🆕 new |\n", key, ns, al
            news++
            key = ""
            continue
        }
        matched[k] = 1; matched[bare(key)] = 1
        status = "ok"
        if (bns[k] + 0 >= ns_floor && ns + 0 > bns[k] * ns_tol) status = "REGRESSION(ns/op)"
        if (al + 0 > bal[k] * al_tol && al + 0 > bal[k] + 2) {
            status = (status == "ok" ? "REGRESSION(allocs/op)" : status " +allocs")
        }
        if (status == "ok") mark = "✅ ok"
        else { mark = "❌ " status; fails++ }
        printf "| %s | %s → %s | %s | %s → %s | %s | %s |\n", \
            key, bns[k], ns, pct(ns, bns[k]), bal[k], al, pct(al, bal[k]), mark
        key = ""
    }
    close(curfile)
    gone = 0
    for (k in bseen) if (!(k in matched) && !(bare(k) in matched)) {
        printf "| %s | %s → — | gone | %s → — | gone | ⚠️ gone |\n", k, bns[k], bal[k]
        gone++
    }
    print ""
    if (fails > 0) {
        print fails " benchmark(s) regressed past tolerance. To bless an"
        print "intentional regression, regenerate and commit the baseline"
        print "artifact (see README \"Benchmarks\")."
        exit 1
    }
    print "No regressions past tolerance (" news " new, " gone " gone)."
}
'
