#!/bin/sh
# benchjson.sh — convert `go test -bench -benchmem` output (stdin) into a
# JSON object mapping benchmark name → {ns_per_op, allocs_per_op}, for the
# CI bench artifact (BENCH_<sha>.json). Usage:
#
#   go test -run '^$' -bench . -benchtime 1x -benchmem ./... |
#       ./scripts/benchjson.sh > "BENCH_$(git rev-parse --short HEAD).json"
#
# Stdlib tooling only: POSIX sh + awk, no jq.
exec awk '
BEGIN { printf "{\n" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    ns = ""; allocs = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        if (n++) printf ",\n"
        printf "  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
    }
}
END { printf "\n}\n" }
'
