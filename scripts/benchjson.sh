#!/bin/sh
# benchjson.sh — convert `go test -bench -benchmem` output (stdin) into a
# JSON object mapping "<package>/<Benchmark>" → {ns_per_op, allocs_per_op},
# for the CI bench artifact (BENCH_<shortsha>.json). Usage:
#
#   go test -run '^$' -bench . -benchtime 50x -count 3 -benchmem ./... |
#       ./scripts/benchjson.sh > "BENCH_$(git rev-parse --short HEAD).json"
#
# Keys are prefixed with the import path from the `pkg:` header go test
# prints per package, so BenchmarkFoo in two packages cannot collide (the
# old unprefixed format silently kept only the last one). When a benchmark
# appears multiple times (-count N), the minimum ns/op and allocs/op are
# kept: minima are the noise-robust statistic for "how fast can this go".
#
# Stdlib tooling only: POSIX sh + awk, no jq.
exec awk '
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    key = (pkg != "" ? pkg "/" name : name)
    ns = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (allocs == "") allocs = "0"
    if (!(key in best_ns)) { order[++n] = key; best_ns[key] = ns; best_al[key] = allocs; next }
    if (ns + 0 < best_ns[key] + 0) best_ns[key] = ns
    if (allocs + 0 < best_al[key] + 0) best_al[key] = allocs
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        key = order[i]
        printf "  \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", key, best_ns[key], best_al[key]
        if (i < n) printf ",\n"
    }
    printf "\n}\n"
}
'
