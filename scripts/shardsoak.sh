#!/usr/bin/env sh
# shardsoak.sh — the distributed-campaign soak: a journaled tingcamp
# coordinator plus four workers over the same seeded world, with one
# process SIGKILL'd while the campaign runs:
#
#   scenario "worker" (default): worker w2 is killed while it holds a
#   lease and restarted against its own checkpoint — exercising lease
#   expiry, reassignment, and checkpoint replay.
#
#   scenario "coordinator": the coordinator itself is killed while leases
#   are in flight and restarted against its write-ahead journal on the
#   same address — exercising journal recovery, the persisted fencing-epoch
#   watermark, and the workers' reconnection backoff.
#
# Gates:
#
#   1. the campaign completes (every shard submitted, coordinator exits 0 —
#      which also asserts zero lost pairs);
#   2. the merged matrix is bytewise identical to a single-process scan of
#      the same world (cmp, not a tolerance);
#   3. scenario-specific: "worker" requires at least one lease
#      reassignment; "coordinator" requires state.json to report the
#      campaign was served by a recovered coordinator.
#
# Usage: shardsoak.sh [relays] [shards] [seed] [worker|coordinator]
#
# Artifacts (state.json, campaign.journal, worker checkpoints, logs) land
# in TING_SOAK_DIR if set (CI uploads it on failure), else a mktemp dir
# removed on success.
set -eu

RELAYS="${1:-20}"
SHARDS="${2:-16}"
SEED="${3:-97}"
SCENARIO="${4:-worker}"
case "$SCENARIO" in
  worker|coordinator) ;;
  *) echo "unknown scenario $SCENARIO (want worker or coordinator)" >&2; exit 2 ;;
esac

if [ -n "${TING_SOAK_DIR:-}" ]; then
  workdir="$TING_SOAK_DIR"
  mkdir -p "$workdir"
  cleanup_dir=""
else
  workdir="$(mktemp -d)"
  cleanup_dir="$workdir"
fi
pids=""
cleanup() {
  for p in $pids; do kill "$p" 2>/dev/null || true; done
  [ -n "$cleanup_dir" ] && rm -rf "$cleanup_dir"
}
trap cleanup EXIT

echo "building tingcamp…"
go build -o "$workdir/tingcamp" ./cmd/tingcamp

common="-model $RELAYS -seed $SEED -samples 3"

# Runs in the main shell (no command substitution): the coordinator must
# stay this shell's child so `wait` can collect its exit status.
start_coordinator() { # listen-addr
  # shellcheck disable=SC2086
  "$workdir/tingcamp" -coordinator $common -shards "$SHARDS" \
    -lease-ttl 2s -listen "$1" -addr-file "$workdir/camp.addr" \
    -journal "$workdir/campaign.journal" \
    -out "$workdir/merged.matrix" -state "$workdir/state.json" \
    >> "$workdir/coordinator.log" 2>&1 &
  coord_pid=$!
}

start_coordinator 127.0.0.1:0
pids="$coord_pid"

i=0
while [ ! -f "$workdir/camp.addr" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "coordinator never wrote its addr-file; log:" >&2
    cat "$workdir/coordinator.log" >&2
    exit 1
  fi
  sleep 0.1
done
addr="$(sed -n 's/^camp=//p' "$workdir/camp.addr")"
echo "coordinator at $addr"

start_worker() { # name extra-args…
  name="$1"; shift
  # shellcheck disable=SC2086
  "$workdir/tingcamp" -worker $common -name "$name" -addr "$addr" \
    -checkpoint "$workdir/$name.ckpt" -scan-workers 2 \
    -unreachable-grace 60s "$@" \
    > "$workdir/$name.log" 2>&1 &
  echo $!
}

# Workers 1, 3, 4 run normally; worker 2 measures slowly (-pair-delay
# stretches lease hold time without changing any value), so the SIGKILL
# below reliably lands while leases are in flight.
w2_pid=$(start_worker w2 -pair-delay 250ms); pids="$pids $w2_pid"
w1_pid=$(start_worker w1 -dally 100ms);  pids="$pids $w1_pid"
w3_pid=$(start_worker w3 -dally 100ms);  pids="$pids $w3_pid"
w4_pid=$(start_worker w4 -dally 100ms);  pids="$pids $w4_pid"

if [ "$SCENARIO" = "worker" ]; then
  # w2's first shard takes seconds at 250ms per circuit series; the kill at
  # +0.6s lands while it still holds that lease.
  sleep 0.6
  echo "SIGKILL worker w2 (pid $w2_pid) mid-campaign"
  kill -9 "$w2_pid" 2>/dev/null || true
  sleep 0.5

  # Restart w2 against its own checkpoint: the crash-resume path. Whatever
  # it measured before the kill replays instead of re-measuring.
  w2r_pid=$(start_worker w2 -dally 100ms); pids="$pids $w2r_pid"
  echo "restarted w2 (pid $w2r_pid) from its checkpoint"
else
  # Kill the coordinator the moment its state snapshot shows a lease out.
  i=0
  while ! grep -q '"state": "leased"' "$workdir/state.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
      echo "no lease ever went out; coordinator log:" >&2
      cat "$workdir/coordinator.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "SIGKILL coordinator (pid $coord_pid) mid-campaign"
  kill -9 "$coord_pid" 2>/dev/null || true
  sleep 1

  # Restart in place: same address (workers are mid-backoff against it),
  # same journal. The recovered coordinator resumes the epoch watermark
  # strictly above every pre-crash grant.
  start_coordinator "$addr"
  pids="$pids $coord_pid"
  echo "restarted coordinator (pid $coord_pid) from its journal"
fi

# The coordinator exits once every shard is merged (0) or pairs were lost (1).
i=0
while kill -0 "$coord_pid" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 600 ]; then
    echo "campaign did not finish within 60s; state:" >&2
    cat "$workdir/state.json" >&2 2>/dev/null || true
    cat "$workdir/coordinator.log" >&2
    exit 1
  fi
  sleep 0.1
done
status=0
wait "$coord_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "coordinator exited $status (lost pairs or error); log:" >&2
  cat "$workdir/coordinator.log" >&2
  exit "$status"
fi
cat "$workdir/coordinator.log"

if [ "$SCENARIO" = "worker" ]; then
  # The killed worker must actually have cost a lease: a soak where the
  # kill landed between leases exercised nothing.
  if grep -q '"reassigned_leases": 0' "$workdir/state.json"; then
    echo "no lease was reassigned: the SIGKILL missed the lease window" >&2
    exit 1
  fi
else
  # The campaign must have been finished by a *recovered* coordinator:
  # state.json is written by the post-restart process, whose snapshot
  # reports recoveries >= 1.
  if ! grep -Eq '"recoveries": [1-9]' "$workdir/state.json"; then
    echo "final state does not show a journal recovery:" >&2
    cat "$workdir/state.json" >&2
    exit 1
  fi
fi

# The determinism gate: one process, same world, byte-for-byte equality —
# a coordinator crash and recovery must not move a single byte.
# shellcheck disable=SC2086
"$workdir/tingcamp" -single $common -scan-workers 4 -out "$workdir/single.matrix" \
  > "$workdir/single.log" 2>&1
if ! cmp "$workdir/merged.matrix" "$workdir/single.matrix"; then
  echo "merged matrix differs from single-process scan" >&2
  exit 1
fi
echo "shard soak ($SCENARIO) passed: merged matrix bytewise equal to single-process scan"
